"""Workload registry: the 15 simulated benchmarks.

The paper's two suites, with the same names and the same
high/low-translation-bandwidth grouping it uses in §5.2 (Figures 9 and
10 show the high-bandwidth group; the low-bandwidth five see little
change from any MMU design).

``REPRO_SCALE`` (environment variable, default 1.0) scales every
workload's problem size / iteration count — useful for quick test runs
(< 1) or longer, closer-to-paper runs (> 1).  Traces are memoized per
``(name, scale, seed)`` because generation (running the algorithms) can
cost as much as simulating them.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.workloads import pannotia, rodinia
from repro.workloads.trace import Trace

__all__ = [
    "HIGH_BANDWIDTH",
    "LOW_BANDWIDTH",
    "PANNOTIA",
    "RODINIA",
    "WORKLOADS",
    "WorkloadFactory",
    "clear_cache",
    "default_scale",
    "is_high_bandwidth",
    "load",
    "load_fresh",
    "load_many",
]

WorkloadFactory = Callable[..., Trace]

PANNOTIA: Dict[str, WorkloadFactory] = {
    "bc": pannotia.bc,
    "color_maxmin": pannotia.color_maxmin,
    "color_max": pannotia.color_max,
    "fw": pannotia.fw,
    "fw_block": pannotia.fw_block,
    "mis": pannotia.mis,
    "pagerank": pannotia.pagerank,
    "pagerank_spmv": pannotia.pagerank_spmv,
}

RODINIA: Dict[str, WorkloadFactory] = {
    "kmeans": rodinia.kmeans,
    "backprop": rodinia.backprop,
    "bfs": rodinia.bfs,
    "hotspot": rodinia.hotspot,
    "lud": rodinia.lud,
    "nw": rodinia.nw,
    "pathfinder": rodinia.pathfinder,
}

WORKLOADS: Dict[str, WorkloadFactory] = {**PANNOTIA, **RODINIA}

# §5.2's grouping: all Pannotia kernels plus bfs and lud demand high
# translation bandwidth; the other five Rodinia kernels do not.
HIGH_BANDWIDTH: Tuple[str, ...] = (
    "bc", "color_maxmin", "color_max", "fw", "fw_block", "mis",
    "pagerank", "pagerank_spmv", "bfs", "lud",
)
LOW_BANDWIDTH: Tuple[str, ...] = (
    "kmeans", "backprop", "hotspot", "nw", "pathfinder",
)

_cache: Dict[Tuple[str, float, Optional[int]], Trace] = {}


def default_scale() -> float:
    """The REPRO_SCALE environment override (default 1.0)."""
    try:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError as exc:
        raise ValueError("REPRO_SCALE must be a number") from exc
    if scale <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return scale


def load(name: str, scale: Optional[float] = None, seed: Optional[int] = None) -> Trace:
    """Build (or fetch the memoized) trace for workload ``name``."""
    if name not in WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(WORKLOADS))}"
        )
    if scale is None:
        scale = default_scale()
    key = (name, scale, seed)
    if key not in _cache:
        kwargs = {"scale": scale}
        if seed is not None:
            kwargs["seed"] = seed
        _cache[key] = WORKLOADS[name](**kwargs)
    return _cache[key]


def load_fresh(name: str, scale: Optional[float] = None,
               seed: Optional[int] = None) -> Trace:
    """Build a private, non-memoized trace instance.

    Fault injection mutates the trace's page table (remaps, unmaps), so
    chaos runs must never share the memoized instance other experiments
    see.  The fresh trace is not entered into the cache either.
    """
    if name not in WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(WORKLOADS))}"
        )
    if scale is None:
        scale = default_scale()
    kwargs = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    return WORKLOADS[name](**kwargs)


def load_many(names, scale: Optional[float] = None) -> List[Trace]:
    """Traces for several workloads (memoized)."""
    return [load(name, scale=scale) for name in names]


def clear_cache() -> None:
    """Drop memoized traces (tests use this to control memory)."""
    _cache.clear()


def is_high_bandwidth(name: str) -> bool:
    """Whether the paper groups this workload as high translation bandwidth."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}")
    return name in HIGH_BANDWIDTH
