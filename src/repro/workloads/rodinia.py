"""Rodinia-like traditional GPU workloads.

Seven kernels mirroring the Rodinia subset the paper evaluates:
``kmeans``, ``backprop``, ``bfs``, ``hotspot``, ``lud``, ``nw``,
``pathfinder``.  Most are regular, dense scientific kernels — streaming
or stencil access with good page locality, the "low translation
bandwidth" group.  The exceptions match the paper: ``bfs`` is an
irregular graph traversal and ``lud``'s column operations stride one
page per lane, so both land in the high-bandwidth group; ``nw`` and
``pathfinder`` do most work in the scratchpad with bursty global phases
at tile boundaries, giving them high *infinite-TLB* miss ratios without
much performance impact (§3.1).
"""

from __future__ import annotations

import numpy as np

from repro.memsys.address_space import AddressSpace
from repro.workloads.device import DeviceArray, TraceBuilder, warp_chunks
from repro.workloads.pannotia import _GraphKernel, _bfs_levels, _scaled
from repro.workloads.trace import Trace

__all__ = [
    "LANES",
    "N_CUS",
    "backprop",
    "bfs",
    "hotspot",
    "kmeans",
    "lud",
    "nw",
    "pathfinder",
]

N_CUS = 16
LANES = 32


def bfs(scale: float = 1.0, seed: int = 10) -> Trace:
    """Level-synchronous breadth-first search over a power-law graph."""
    k = _GraphKernel(_scaled(140_000, scale, 4096), mean_degree=6, seed=seed,
                     symmetric=True)
    dist = k.prop("dist")
    visited = k.prop("visited")
    frontier_buf = k.prop("frontier")
    source = int(k.rng.integers(0, k.graph.n_vertices))
    for level in _bfs_levels(k.graph, source):
        k.frontier_pass(
            level,
            gathers=[visited],
            scatter_writes=dist,
            frontier_array=frontier_buf,
            sample=6,
            edge_cap=64,
        )
    return k.build("bfs", issue_interval=97.0, suite="rodinia", high_bandwidth=True)


def kmeans(scale: float = 1.0, seed: int = 11) -> Trace:
    """K-means clustering: stream the point matrix, hot small centroids."""
    n_points = _scaled(96_000, scale, 4096)
    n_features = 16
    n_clusters = 16
    space = AddressSpace(asid=0)
    tb = TraceBuilder(n_cus=N_CUS)
    points = DeviceArray(space, n_points * n_features, 4, "points")
    centroids = DeviceArray(space, n_clusters * n_features, 4, "centroids")
    assignment = DeviceArray(space, n_points, 4, "assignment")
    rng = np.random.default_rng(seed)
    for _ in range(2):  # two Lloyd iterations
        for cu, start, count in warp_chunks(n_points, N_CUS, sample=6):
            # Each lane walks its point's features; emit a few sampled
            # feature columns (stride = n_features elements per lane).
            for f in rng.choice(n_features, size=4, replace=False):
                tb.emit(cu, [
                    points.addr((start + lane) * n_features + int(f))
                    for lane in range(count)
                ])
            # Centroids are tiny and stay hot.
            tb.emit(cu, [centroids.addr(int(c) * n_features)
                         for c in rng.integers(0, n_clusters, size=4)])
            tb.emit(cu, assignment.addrs(range(start, start + count)), is_write=True)
    return tb.build("kmeans", space, issue_interval=56.0,
                    suite="rodinia", high_bandwidth=False)


def backprop(scale: float = 1.0, seed: int = 12) -> Trace:
    """Back-propagation: stream a large weight matrix forward and backward."""
    n_in = _scaled(4096, scale, 512)
    n_hidden = 512
    space = AddressSpace(asid=0)
    tb = TraceBuilder(n_cus=N_CUS)
    weights = DeviceArray(space, n_in * n_hidden, 4, "weights")
    weights_t = DeviceArray(space, n_in * n_hidden, 4, "weights_t")
    input_v = DeviceArray(space, n_in, 4, "input")
    hidden_v = DeviceArray(space, n_hidden, 4, "hidden")
    sample = 12
    # Forward: hidden[j] = sum_i w[i][j]*in[i]; stream rows coalesced.
    for cu, start, count in warp_chunks(n_in * n_hidden, N_CUS, sample=sample):
        tb.emit(cu, [weights.addr(start + c) for c in range(count)])
        tb.emit(cu, [input_v.addr((start // n_hidden) % n_in)])
        if start % (n_hidden * 8) == 0:
            tb.emit(cu, hidden_v.addrs(range(min(count, n_hidden))), is_write=True)
    # Backward: stream the (pre-transposed, Rodinia-style) weight matrix.
    for cu, start, count in warp_chunks(n_in * n_hidden, N_CUS, sample=sample):
        tb.emit(cu, [weights_t.addr(start + c) for c in range(count)])
        tb.emit(cu, [weights_t.addr(start + c) for c in range(count)], is_write=True)
    return tb.build("backprop", space, issue_interval=67.0,
                    suite="rodinia", high_bandwidth=False)


def hotspot(scale: float = 1.0, seed: int = 13) -> Trace:
    """Thermal stencil over a 2-D grid with scratchpad tiling."""
    side = _scaled(1024, min(1.0, scale), 256)
    space = AddressSpace(asid=0)
    tb = TraceBuilder(n_cus=N_CUS)
    temp = DeviceArray(space, side * side, 4, "temp")
    power = DeviceArray(space, side * side, 4, "power")
    out = DeviceArray(space, side * side, 4, "temp_out")
    sample = 12
    for _step in range(2):
        for cu, start, count in warp_chunks(side * side, N_CUS, sample=sample):
            row, col = divmod(start, side)
            seg = range(start, start + count)
            tb.emit(cu, temp.addrs(seg))
            if row > 0:
                tb.emit(cu, temp.addrs(range(start - side, start - side + count)))
            if row < side - 1:
                tb.emit(cu, temp.addrs(range(start + side, start + side + count)))
            tb.emit(cu, power.addrs(seg))
            tb.emit_scratch_burst(cu, 4)
            tb.emit(cu, out.addrs(seg), is_write=True)
    return tb.build("hotspot", space, issue_interval=60.0,
                    suite="rodinia", high_bandwidth=False)


def lud(scale: float = 1.0, seed: int = 14) -> Trace:
    """LU decomposition: coalesced row panels, page-strided column panels."""
    n = 1024  # 4 KB rows: one page per row (column panels diverge)
    space = AddressSpace(asid=0)
    tb = TraceBuilder(n_cus=N_CUS)
    a = DeviceArray(space, n * n, 4, "matrix")
    row_bytes = n * 4
    rng = np.random.default_rng(seed)
    k_steps = sorted(rng.choice(n - LANES, size=_scaled(12, scale, 3), replace=False))
    interior_sample = 8
    for kk in k_steps:
        span = n - kk
        # Perimeter row k (coalesced) ...
        for cu, start, count in warp_chunks(span, N_CUS):
            base = a.base_va + kk * row_bytes + (kk + start) * 4
            tb.emit(cu, [base + c * 4 for c in range(count)])
        # ... and perimeter column k: one page per lane (divergent).
        for cu, start, count in warp_chunks(span, N_CUS):
            col = [a.base_va + (kk + start + c) * row_bytes + kk * 4
                   for c in range(count)]
            tb.emit(cu, col)
            tb.emit(cu, col, is_write=True)
        # Trailing submatrix update, sampled, row-major coalesced.
        for cu, start, count in warp_chunks(span * span, N_CUS, sample=interior_sample):
            i, j = divmod(start, span)
            count = min(count, span - j)
            base = a.base_va + (kk + i) * row_bytes + (kk + j) * 4
            seg = [base + c * 4 for c in range(count)]
            tb.emit(cu, seg)
            tb.emit(cu, [a.base_va + (kk + i) * row_bytes + kk * 4])
            tb.emit(cu, seg, is_write=True)
    return tb.build("lud", space, issue_interval=13.0,
                    suite="rodinia", high_bandwidth=True, matrix_n=n)


def nw(scale: float = 1.0, seed: int = 15) -> Trace:
    """Needleman–Wunsch: diagonal wavefront of scratchpad-staged tiles.

    Tile loads burst across one page per row; between bursts the kernel
    computes entirely in scratchpad — the access pattern behind the
    paper's "high infinite-TLB miss ratio, low performance impact"
    observation for this workload.
    """
    n = 1536  # 6 KB rows: tile rows land on distinct pages
    space = AddressSpace(asid=0)
    tb = TraceBuilder(n_cus=N_CUS)
    score = DeviceArray(space, n * n, 4, "score")
    ref = DeviceArray(space, n * n, 4, "reference")
    row_bytes = n * 4
    tiles = n // LANES
    diag_sample = 2

    def tile_io(cu: int, ti: int, tj: int, array: DeviceArray, write: bool) -> None:
        for r in range(0, LANES, 4):  # sampled rows of the tile
            base = array.base_va + (ti * LANES + r) * row_bytes + tj * LANES * 4
            tb.emit(cu, [base + c * 4 for c in range(LANES)], is_write=write)

    tile_counter = 0
    for diag in range(0, 2 * tiles - 1, diag_sample):
        for ti in range(tiles):
            tj = diag - ti
            if not 0 <= tj < tiles:
                continue
            # Deal tiles to CUs by emission order (a sampled diagonal
            # would otherwise always hash to the same CU parity).
            cu = tile_counter % N_CUS
            tile_counter += 1
            tile_io(cu, ti, tj, score, write=False)
            tile_io(cu, ti, tj, ref, write=False)
            tb.emit_scratch_burst(cu, 64)
            tile_io(cu, ti, tj, score, write=True)
    return tb.build("nw", space, issue_interval=9.0,
                    suite="rodinia", high_bandwidth=False, matrix_n=n)


def pathfinder(scale: float = 1.0, seed: int = 16) -> Trace:
    """Dynamic-programming grid walk: row streaming + scratchpad tiles."""
    width = _scaled(393_216, scale, 8192)
    n_rows = 14
    space = AddressSpace(asid=0)
    tb = TraceBuilder(n_cus=N_CUS)
    wall = DeviceArray(space, width * 2, 4, "wall_rows")  # double buffer
    result = DeviceArray(space, width, 4, "result")
    sample = 16
    for row in range(n_rows):
        src_off = (row % 2) * width
        dst_off = ((row + 1) % 2) * width
        for cu, start, count in warp_chunks(width, N_CUS, sample=sample):
            tb.emit(cu, wall.addrs(range(src_off + start, src_off + start + count)))
            tb.emit_scratch_burst(cu, 6)
            tb.emit(cu, wall.addrs(range(dst_off + start, dst_off + start + count)),
                    is_write=True)
    for cu, start, count in warp_chunks(width, N_CUS, sample=sample):
        tb.emit(cu, result.addrs(range(start, start + count)), is_write=True)
    return tb.build("pathfinder", space, issue_interval=14.0,
                    suite="rodinia", high_bandwidth=False)
