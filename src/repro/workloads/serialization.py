"""Trace serialization.

Generating a trace means running the workload's algorithm; for large
scales that costs as much as simulating it.  Traces can therefore be
saved to a compact ``.npz`` container and reloaded later (or shipped to
another machine) without regeneration.

The address space is *reconstructed*, not pickled: the file stores the
mappings (base VA, page count, permissions, large flag, and for synonym
mappings the index of the source), and loading replays them through a
fresh :class:`AddressSpace`.  Frame allocation is deterministic, so the
reload reproduces the exact virtual→physical layout.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.memsys.address_space import AddressSpace
from repro.memsys.permissions import Permissions
from repro.workloads.trace import (
    MemoryInstruction,
    Trace,
    TraceValidationError,
    validate_trace,
)

__all__ = [
    "FORMAT_VERSION",
    "load_trace",
    "mapping_rows",
    "rebuild_address_space",
    "save_trace",
]

FORMAT_VERSION = 1


def mapping_rows(space: AddressSpace) -> List[dict]:
    """JSON-able allocation log of ``space``.

    Each row records one mapping (base VA, page count, permissions,
    large flag) with synonym sources identified by physical equality,
    so :func:`rebuild_address_space` can replay the exact layout.
    """
    rows = []
    for m in space.mappings:
        source = -1
        pa = space.translate(m.base_va)
        for j, other in enumerate(space.mappings):
            if other is m:
                break
            if space.translate(other.base_va) == pa:
                source = j
                break
        rows.append({
            "base_va": m.base_va,
            "n_pages": m.n_pages,
            "permissions": int(m.permissions),
            "large": m.large,
            "synonym_of": source,
        })
    return rows


def rebuild_address_space(asid: int, rows: List[dict]) -> AddressSpace:
    """Replay a :func:`mapping_rows` log through a fresh address space.

    Frame allocation is deterministic, so the replay reproduces the
    exact virtual→physical layout; a row whose base VA disagrees with
    the replayed allocation raises ``ValueError``.
    """
    space = AddressSpace(asid=asid)
    rebuilt = []
    for row in rows:
        if row["synonym_of"] >= 0:
            m = space.map_synonym(rebuilt[row["synonym_of"]],
                                  permissions=Permissions(row["permissions"]))
        else:
            m = space.mmap(row["n_pages"],
                           permissions=Permissions(row["permissions"]),
                           large_pages=row["large"])
        if m.base_va != row["base_va"]:
            raise ValueError(
                f"address-space replay diverged: expected base "
                f"{row['base_va']:#x}, got {m.base_va:#x}"
            )
        rebuilt.append(m)
    return space


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` (.npz).  Returns the resolved path."""
    path = Path(path)
    if trace.address_space is None:
        raise ValueError("only traces with an address space can be saved")
    space = trace.address_space

    # Flatten instructions: per-instruction (cu, n_lanes, is_write,
    # scratchpad) plus one concatenated lane-address array.
    cu_ids: List[int] = []
    lane_counts: List[int] = []
    flags: List[int] = []
    lanes: List[int] = []
    for cu, stream in enumerate(trace.per_cu):
        for inst in stream:
            cu_ids.append(cu)
            lane_counts.append(inst.n_lanes)
            flags.append(int(inst.is_write) | (int(inst.scratchpad) << 1))
            lanes.extend(inst.addresses)

    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "n_cus": trace.n_cus,
        "issue_interval": trace.issue_interval,
        "asid": space.asid,
        "metadata": trace.metadata,
        "mappings": mapping_rows(space),
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        cu_ids=np.asarray(cu_ids, dtype=np.int32),
        lane_counts=np.asarray(lane_counts, dtype=np.int32),
        flags=np.asarray(flags, dtype=np.int8),
        lanes=np.asarray(lanes, dtype=np.int64),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_trace(path: Union[str, Path]) -> Trace:
    """Reload a trace saved by :func:`save_trace`.

    The file's contents are validated before a trace is built — a
    truncated, bit-rotted, or foreign file raises
    :class:`~repro.workloads.trace.TraceValidationError` with the
    specific problem rather than producing a silently-wrong simulation.
    """
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        if meta["version"] != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {meta['version']}"
            )
        cu_ids = data["cu_ids"]
        lane_counts = data["lane_counts"]
        flags = data["flags"]
        lanes = data["lanes"]
    _validate_arrays(path, meta, cu_ids, lane_counts, flags, lanes)

    # Rebuild the address space by replaying the allocations.
    space = rebuild_address_space(meta["asid"], meta["mappings"])

    per_cu: List[List[MemoryInstruction]] = [[] for _ in range(meta["n_cus"])]
    cursor = 0
    for cu, count, flag in zip(cu_ids, lane_counts, flags):
        addresses = tuple(int(a) for a in lanes[cursor:cursor + count])
        cursor += count
        per_cu[int(cu)].append(MemoryInstruction(
            addresses=addresses,
            is_write=bool(flag & 1),
            scratchpad=bool(flag & 2),
        ))
    per_cu = [s for s in per_cu if s]
    return validate_trace(Trace(
        name=meta["name"],
        per_cu=per_cu,
        address_space=space,
        issue_interval=meta["issue_interval"],
        metadata=meta["metadata"],
    ))


def _validate_arrays(path, meta, cu_ids, lane_counts, flags, lanes) -> None:
    """Reject a structurally broken trace file before building anything."""
    where = f"trace file {str(path)!r}"
    n_cus = int(meta.get("n_cus", 0))
    if n_cus <= 0:
        raise TraceValidationError(f"{where}: n_cus must be positive")
    n = len(cu_ids)
    if n == 0:
        raise TraceValidationError(f"{where}: empty trace (zero instructions)")
    if len(lane_counts) != n or len(flags) != n:
        raise TraceValidationError(
            f"{where}: per-instruction arrays disagree on length "
            f"({n} cu_ids, {len(lane_counts)} lane_counts, {len(flags)} flags)")
    if int(lane_counts.min()) <= 0:
        raise TraceValidationError(
            f"{where}: instruction with non-positive lane count "
            f"{int(lane_counts.min())}")
    if int(cu_ids.min()) < 0 or int(cu_ids.max()) >= n_cus:
        raise TraceValidationError(
            f"{where}: CU id out of range 0..{n_cus - 1}")
    unknown = int(np.bitwise_and(flags, ~np.int8(3)).any())
    if unknown:
        bad = int(flags[np.bitwise_and(flags, ~np.int8(3)) != 0][0])
        raise TraceValidationError(
            f"{where}: unknown access kind (flag byte {bad:#x}; only "
            f"is_write=1 and scratchpad=2 are defined)")
    total_lanes = int(lane_counts.sum())
    if total_lanes != len(lanes):
        raise TraceValidationError(
            f"{where}: lane array holds {len(lanes)} addresses but "
            f"instructions claim {total_lanes} (truncated file?)")
    if len(lanes) and int(lanes.min()) < 0:
        raise TraceValidationError(
            f"{where}: negative lane address {int(lanes.min())}")
