"""Synthetic stress workloads for virtual-memory corner cases.

The 15 paper workloads have (almost) no synonyms — that is Observation 5
and part of why GPU virtual caching is practical.  These generators
build the *unusual* situations: synonym-heavy sharing (the future
multi-process scenario §4.3 anticipates), homonym-heavy multi-process
time-sharing, and plain tunable gather kernels for calibration work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.memsys.address_space import AddressSpace, System
from repro.memsys.permissions import Permissions
from repro.workloads.device import DeviceArray, TraceBuilder
from repro.workloads.trace import Trace

__all__ = [
    "LANES",
    "MultiProcessWorkload",
    "N_CUS",
    "gather_kernel",
    "multiprocess_homonyms",
    "synonym_stress",
]

N_CUS = 16
LANES = 32


def synonym_stress(
    n_pages: int = 256,
    n_aliases: int = 3,
    n_accesses: int = 12_000,
    synonym_fraction: float = 0.5,
    zipf_exponent: float = 1.0,
    scatter_hot_lines: bool = False,
    n_cus: int = N_CUS,
    seed: int = 0,
) -> Trace:
    """Read-only data shared through several virtual aliases.

    A fraction of accesses go through non-leading aliases — the access
    pattern where dynamic synonym remapping pays off.  All aliases map
    the same physical region read-only, so no read-write synonym faults
    occur.
    """
    if not 0.0 <= synonym_fraction <= 1.0:
        raise ValueError("synonym fraction must be within [0, 1]")
    if n_aliases < 2:
        raise ValueError("need at least two aliases for synonyms to exist")
    rng = np.random.default_rng(seed)
    space = AddressSpace(asid=0)
    region = space.mmap(n_pages, permissions=Permissions.READ_ONLY)
    aliases = [region] + [space.map_synonym(region) for _ in range(n_aliases - 1)]

    # Zipf-popular lines within the region.  By default the hot lines
    # cluster into a small set of hot *pages* (the "active synonym"
    # regime a per-CU remapping table exploits); with
    # ``scatter_hot_lines`` they are spread across all pages instead.
    n_lines = n_pages * 32
    ranks = np.arange(1, n_lines + 1, dtype=np.float64) ** (-zipf_exponent)
    cdf = np.cumsum(ranks / ranks.sum())
    perm = rng.permutation(n_lines) if scatter_hot_lines \
        else np.arange(n_lines)

    tb = TraceBuilder(n_cus=n_cus)
    for i in range(n_accesses):
        cu = i % n_cus
        lines = perm[np.searchsorted(cdf, rng.random(8))]
        use_alias = rng.random() < synonym_fraction
        base = aliases[1 + int(rng.integers(0, n_aliases - 1))] if use_alias \
            else aliases[0]
        tb.emit(cu, [base.base_va + int(line) * 128 for line in lines])
    return tb.build("synonym_stress", space, issue_interval=20.0,
                    suite="synthetic", high_bandwidth=True,
                    n_aliases=n_aliases, synonym_fraction=synonym_fraction,
                    scatter_hot_lines=scatter_hot_lines)


@dataclass
class MultiProcessWorkload:
    """Two processes time-sharing the GPU (homonym stress).

    Both address spaces use the *same* virtual address range (homonyms)
    over private physical data, plus one region physically shared
    between them (cross-ASID synonyms).  ``traces`` holds one trace per
    process; run them against one hierarchy with the matching ``asid``
    to model context switches.
    """

    system: System
    spaces: List[AddressSpace]
    traces: List[Trace]
    shared_base_vas: Tuple[int, int]


def multiprocess_homonyms(
    n_private_pages: int = 128,
    n_shared_pages: int = 32,
    n_accesses: int = 4_000,
    n_cus: int = N_CUS,
    seed: int = 1,
) -> MultiProcessWorkload:
    """Build the two-process homonym/synonym scenario of §4.3."""
    rng = np.random.default_rng(seed)
    system = System()
    space_a = system.create_address_space(asid=0)
    space_b = system.create_address_space(asid=1)

    # Same base VA in both spaces → identical VPNs, different PPNs.
    private_a = space_a.mmap(n_private_pages)
    private_b = space_b.mmap(n_private_pages)
    assert private_a.base_va == private_b.base_va  # true homonyms

    shared_a = space_a.mmap(n_shared_pages, permissions=Permissions.READ_ONLY)
    shared_b = space_a.share_into(space_b, shared_a)

    traces = []
    for space, private, shared in ((space_a, private_a, shared_a),
                                   (space_b, private_b, shared_b)):
        tb = TraceBuilder(n_cus=n_cus)
        for i in range(n_accesses):
            cu = i % n_cus
            if rng.random() < 0.25:
                page = int(rng.integers(0, n_shared_pages))
                base = shared.base_va
            else:
                page = int(rng.integers(0, n_private_pages))
                base = private.base_va
            offsets = rng.integers(0, 32, size=4)
            tb.emit(cu, [base + page * 4096 + int(o) * 128 for o in offsets])
        traces.append(tb.build(f"process_{space.asid}", space,
                               issue_interval=20.0, suite="synthetic",
                               high_bandwidth=False))
    return MultiProcessWorkload(
        system=system,
        spaces=[space_a, space_b],
        traces=traces,
        shared_base_vas=(shared_a.base_va, shared_b.base_va),
    )


def gather_kernel(
    n_pages: int = 512,
    n_instructions: int = 8_000,
    lanes: int = LANES,
    zipf_exponent: float = 1.1,
    issue_interval: float = 30.0,
    n_cus: int = N_CUS,
    seed: int = 2,
) -> Trace:
    """A bare Zipf gather — the minimal high-translation-bandwidth kernel.

    Useful for calibration studies and microbenchmarks: one knob for
    footprint, one for skew, one for arithmetic intensity.
    """
    rng = np.random.default_rng(seed)
    space = AddressSpace(asid=0)
    data = DeviceArray(space, n_pages * 1024, 4, "data")
    n_elements = n_pages * 1024
    ranks = np.arange(1, n_elements + 1, dtype=np.float64) ** (-zipf_exponent)
    cdf = np.cumsum(ranks / ranks.sum())
    perm = rng.permutation(n_elements)

    tb = TraceBuilder(n_cus=n_cus)
    for i in range(n_instructions):
        cu = i % n_cus
        idx = perm[np.searchsorted(cdf, rng.random(lanes))]
        tb.emit(cu, data.addrs(idx))
    return tb.build("gather_kernel", space, issue_interval=issue_interval,
                    suite="synthetic", high_bandwidth=True)
