"""Memory-trace containers.

A workload is a per-CU sequence of *memory instructions*.  Each
instruction carries the virtual byte addresses its active SIMD lanes
generated — up to 32 (Table 1: 32 lanes per CU).  The coalescer merges
lane addresses into line requests; an instruction touching many lines is
*memory divergent* (scatter/gather), the property that makes graph
workloads so hard on GPU TLBs (§3.1: ``fw`` averages 9.3 memory accesses
per dynamic memory instruction).

Scratchpad instructions never consult the TLB or the caches (§2.1); they
matter because workloads like ``nw`` and ``pathfinder`` do most of their
work in scratchpad and only burst into memory at kernel boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.gpu.coalescer import CoalescedRequest, Coalescer
from repro.memsys.address_space import AddressSpace
from repro.memsys.addressing import DEFAULT_LINE_SIZE, line_address, page_number


__all__ = [
    "MemoryInstruction",
    "Trace",
    "TraceValidationError",
    "round_robin_requests",
    "validate_trace",
]

class TraceValidationError(ValueError):
    """A trace (usually deserialized) is structurally invalid."""


def validate_trace(trace: "Trace") -> "Trace":
    """Check a trace for structural sanity; returns it for chaining.

    Traces built by the in-tree generators are valid by construction,
    but deserialized ones come from a file that may be truncated,
    corrupted, or written by foreign tooling.  Raises
    :class:`TraceValidationError` on the first problem: an empty trace
    (zero instructions), or a lane address that is not a nonnegative
    integer.

    Array-backed traces (anything exposing a ``validate_fast`` method,
    e.g. :class:`~repro.workloads.compiled.CompiledTrace`) validate via
    one vectorized pass over their arrays instead of the per-lane loop.
    """
    fast = getattr(trace, "validate_fast", None)
    if fast is not None:
        fast()
        return trace
    if trace.n_instructions == 0:
        raise TraceValidationError(
            f"trace {trace.name!r} is empty (zero instructions)")
    for cu_id, stream in enumerate(trace.per_cu):
        for i, inst in enumerate(stream):
            for addr in inst.addresses:
                if not isinstance(addr, int) or isinstance(addr, bool):
                    raise TraceValidationError(
                        f"trace {trace.name!r}: CU {cu_id} instruction {i} "
                        f"has non-integer lane address {addr!r}")
                if addr < 0:
                    raise TraceValidationError(
                        f"trace {trace.name!r}: CU {cu_id} instruction {i} "
                        f"has negative lane address {addr}")
    return trace


@dataclass(frozen=True)
class MemoryInstruction:
    """One dynamic GPU load/store with its per-lane addresses."""

    addresses: Tuple[int, ...]
    is_write: bool = False
    scratchpad: bool = False

    def __post_init__(self) -> None:
        if not self.addresses:
            raise ValueError("a memory instruction needs at least one lane address")

    @property
    def n_lanes(self) -> int:
        return len(self.addresses)

    def lines(self, line_size: int = DEFAULT_LINE_SIZE) -> Tuple[int, ...]:
        """Distinct line addresses touched, in first-appearance order."""
        seen = {}
        for addr in self.addresses:
            seen.setdefault(line_address(addr, line_size), None)
        return tuple(seen)

    def pages(self) -> Tuple[int, ...]:
        """Distinct virtual pages touched, in first-appearance order."""
        seen = {}
        for addr in self.addresses:
            seen.setdefault(page_number(addr), None)
        return tuple(seen)


@dataclass
class Trace:
    """A full workload trace: one instruction stream per compute unit."""

    name: str
    per_cu: List[List[MemoryInstruction]]
    address_space: Optional[AddressSpace] = None
    # Mean compute cycles between memory instructions on one CU.  This is
    # the workload's arithmetic intensity knob: it sets how fast a CU
    # *wants* to issue memory instructions when nothing stalls it.
    issue_interval: float = 4.0
    metadata: Dict[str, object] = field(default_factory=dict)
    # Lazily-built coalesced request lists, keyed by line size (see
    # coalesced_per_cu).  Never part of equality or repr.
    _coalesced: Dict[int, List[List[Optional[List[CoalescedRequest]]]]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.per_cu:
            raise ValueError("trace needs at least one CU stream")
        if self.issue_interval <= 0:
            raise ValueError("issue interval must be positive")

    def coalesced_per_cu(
        self, line_size: int = DEFAULT_LINE_SIZE
    ) -> List[List[Optional[List[CoalescedRequest]]]]:
        """Per-CU, per-instruction coalesced request lists, memoized.

        Coalescing is a pure function of an instruction's lane addresses,
        so the lists are computed once per (trace, line size) and reused:
        replaying the same trace under a second MMU design — or a repeat
        timing run — skips re-coalescing entirely.  Scratchpad
        instructions coalesce to ``None`` (they never reach the memory
        hierarchy); every other entry is a non-empty list of requests,
        shared freely because requests are immutable.
        """
        cached = self._coalesced.get(line_size)
        if cached is None:
            coalesce = Coalescer(line_size).coalesce
            cached = [
                [None if inst.scratchpad
                 else coalesce(inst.addresses, inst.is_write)
                 for inst in stream]
                for stream in self.per_cu
            ]
            self._coalesced[line_size] = cached
        return cached

    @property
    def n_cus(self) -> int:
        return len(self.per_cu)

    @property
    def n_instructions(self) -> int:
        return sum(len(stream) for stream in self.per_cu)

    def all_instructions(self) -> Iterable[MemoryInstruction]:
        """Every instruction, CU by CU (order within a CU preserved)."""
        for stream in self.per_cu:
            yield from stream

    # -- summary statistics ------------------------------------------------
    def global_memory_instructions(self) -> int:
        return sum(
            1 for inst in self.all_instructions() if not inst.scratchpad
        )

    def scratchpad_fraction(self) -> float:
        """Fraction of instructions that hit only the scratchpad."""
        total = self.n_instructions
        if total == 0:
            return 0.0
        scratch = sum(1 for inst in self.all_instructions() if inst.scratchpad)
        return scratch / total

    def mean_divergence(self, line_size: int = DEFAULT_LINE_SIZE) -> float:
        """Average coalesced line requests per global-memory instruction."""
        total_lines = 0
        total_insts = 0
        for inst in self.all_instructions():
            if inst.scratchpad:
                continue
            total_lines += len(inst.lines(line_size))
            total_insts += 1
        return total_lines / total_insts if total_insts else 0.0

    def footprint_pages(self) -> int:
        """Distinct 4 KB virtual pages referenced by the trace."""
        pages = set()
        for inst in self.all_instructions():
            if inst.scratchpad:
                continue
            for addr in inst.addresses:
                pages.add(page_number(addr))
        return len(pages)

    def truncated(self, max_instructions_per_cu: int) -> "Trace":
        """A copy limited to the first N instructions per CU (for tests)."""
        return Trace(
            name=self.name,
            per_cu=[stream[:max_instructions_per_cu] for stream in self.per_cu],
            address_space=self.address_space,
            issue_interval=self.issue_interval,
            metadata=dict(self.metadata),
        )


def round_robin_requests(
    trace: Trace, line_size: int = DEFAULT_LINE_SIZE
) -> Iterable[Tuple[int, MemoryInstruction, Sequence[int]]]:
    """Interleave CU streams one instruction at a time.

    Yields ``(cu_id, instruction, coalesced_lines)`` in the round-robin
    global order the functional simulator uses.  Scratchpad instructions
    are yielded with an empty line list.
    """
    cursors = [0] * trace.n_cus
    remaining = trace.n_instructions
    while remaining:
        for cu_id, stream in enumerate(trace.per_cu):
            i = cursors[cu_id]
            if i >= len(stream):
                continue
            inst = stream[i]
            cursors[cu_id] = i + 1
            remaining -= 1
            lines = () if inst.scratchpad else inst.lines(line_size)
            yield cu_id, inst, lines
