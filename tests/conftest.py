"""Shared fixtures: small SoC configurations and simple traces."""

from __future__ import annotations

import pytest

from repro.memsys.address_space import AddressSpace
from repro.memsys.cache import CacheConfig
from repro.memsys.iommu import IOMMUConfig
from repro.system.config import SoCConfig
from repro.workloads.trace import MemoryInstruction, Trace


@pytest.fixture
def small_config() -> SoCConfig:
    """A scaled-down SoC: 4 CUs, 4 KB L1s, 64 KB L2, tiny TLBs.

    Small enough that tests can exercise evictions and conflicts with a
    handful of accesses.
    """
    return SoCConfig(
        n_cus=4,
        l1=CacheConfig(size_bytes=4 * 1024, line_size=128, associativity=4,
                       write_back=False, write_allocate=False),
        l2=CacheConfig(size_bytes=64 * 1024, line_size=128, associativity=8,
                       n_banks=4, write_back=True, write_allocate=True),
        per_cu_tlb_entries=8,
        iommu=IOMMUConfig(shared_tlb_entries=32),
        fbt_entries=256,
        fbt_associativity=4,
        cu_window=16,
    )


@pytest.fixture
def address_space() -> AddressSpace:
    return AddressSpace(asid=0)


def make_trace(
    space: AddressSpace,
    lane_addresses,
    n_cus: int = 1,
    issue_interval: float = 4.0,
    name: str = "test",
    is_write=None,
) -> Trace:
    """Build a single-CU trace from a list of per-instruction lane lists."""
    writes = is_write if is_write is not None else [False] * len(lane_addresses)
    stream = [
        MemoryInstruction(addresses=tuple(addrs), is_write=w)
        for addrs, w in zip(lane_addresses, writes)
    ]
    per_cu = [stream] + [[] for _ in range(n_cus - 1)]
    per_cu = [s for s in per_cu if s] or [stream]
    return Trace(name=name, per_cu=per_cu, address_space=space,
                 issue_interval=issue_interval)
