"""Tests for address arithmetic helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memsys.addressing import (
    PAGE_SIZE,
    compose_address,
    is_power_of_two,
    line_address,
    line_base,
    line_index_in_page,
    lines_per_page,
    log2_int,
    page_number,
    page_offset,
    translate_line_address,
)


class TestBasics:
    def test_powers_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(4096) == 12
        with pytest.raises(ValueError):
            log2_int(6)

    def test_page_math(self):
        assert page_number(0) == 0
        assert page_number(4095) == 0
        assert page_number(4096) == 1
        assert page_offset(4097) == 1

    def test_line_math(self):
        assert line_address(0) == 0
        assert line_address(127) == 0
        assert line_address(128) == 1
        assert line_base(200) == 128

    def test_lines_per_page(self):
        assert lines_per_page(128, 4096) == 32
        assert lines_per_page(64, 4096) == 64
        with pytest.raises(ValueError):
            lines_per_page(100, 4096)

    def test_line_index_in_page(self):
        assert line_index_in_page(0) == 0
        assert line_index_in_page(4095) == 31
        assert line_index_in_page(4096 + 129) == 1

    def test_compose_address(self):
        assert compose_address(3, 100) == 3 * PAGE_SIZE + 100
        with pytest.raises(ValueError):
            compose_address(1, PAGE_SIZE)


class TestTranslateLineAddress:
    def test_rehoming_preserves_offset(self):
        vline = 10 * 32 + 7  # line 7 of virtual page 10
        pline = translate_line_address(vline, from_page=10, to_page=99)
        assert pline == 99 * 32 + 7

    def test_wrong_page_rejected(self):
        with pytest.raises(ValueError):
            translate_line_address(5, from_page=10, to_page=1)


@given(st.integers(min_value=0, max_value=2 ** 48))
def test_page_decomposition_roundtrip(addr):
    assert compose_address(page_number(addr), page_offset(addr)) == addr


@given(st.integers(min_value=0, max_value=2 ** 48))
def test_line_and_page_consistent(addr):
    # A byte's line index within its page is its line's index too.
    assert line_address(addr) == page_number(addr) * 32 + line_index_in_page(addr)


@given(st.integers(min_value=0, max_value=2 ** 30),
       st.integers(min_value=0, max_value=2 ** 20),
       st.integers(min_value=0, max_value=31))
def test_translate_line_roundtrip(page_a, page_b, index):
    line = page_a * 32 + index
    there = translate_line_address(line, page_a, page_b)
    back = translate_line_address(there, page_b, page_a)
    assert back == line
