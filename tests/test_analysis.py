"""Tests for metric aggregation and report rendering."""

import pytest

from repro.analysis.metrics import (
    average_across_workloads,
    fbt_hit_fraction,
    geomean,
    mean,
    relative_performance,
    translation_filter_rate,
)
from repro.analysis.report import bar, bar_chart, format_table, section, stacked_bar
from repro.system.run import SimulationResult


def result(cycles, counters=None):
    return SimulationResult(workload="w", design="d", cycles=cycles,
                            instructions=0, requests=0,
                            counters=counters or {})


class TestMeans:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestRelativePerformance:
    def test_relative_to_ideal(self):
        results = {"ideal": result(100.0), "base": result(200.0),
                   "vc": result(105.0)}
        rel = relative_performance(results, "ideal")
        assert rel["ideal"] == 1.0
        assert rel["base"] == 0.5
        assert rel["vc"] == pytest.approx(100 / 105)

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            relative_performance({"a": result(1.0)}, "nope")

    def test_average_across_workloads(self):
        table = {"w1": {"a": 1.0, "b": 2.0}, "w2": {"a": 3.0, "b": 4.0}}
        avg = average_across_workloads(table)
        assert avg == {"a": 2.0, "b": 3.0}
        subset = average_across_workloads(table, workloads=["w1"])
        assert subset == {"a": 1.0, "b": 2.0}
        assert average_across_workloads({}, workloads=[]) == {}


class TestFilterMetrics:
    def test_translation_filter_rate(self):
        base = result(1.0, {"iommu.accesses": 1000})
        vc = result(1.0, {"iommu.accesses": 300})
        assert translation_filter_rate(base, vc) == pytest.approx(0.7)
        empty = result(1.0, {})
        assert translation_filter_rate(empty, vc) == 0.0

    def test_fbt_hit_fraction(self):
        r = result(1.0, {"iommu.tlb_misses": 100, "iommu.fbt_hits": 74})
        assert fbt_hit_fraction(r) == pytest.approx(0.74)
        assert fbt_hit_fraction(result(1.0, {})) == 0.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "x"], [["abc", 1.5], ["de", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.500" in text and "22" in text
        assert len(set(len(l) for l in lines if l)) <= 2  # aligned

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_bar_scaling(self):
        assert bar(0.5, scale=1.0, width=10) == "#####"
        assert bar(2.0, scale=1.0, width=10) == "#" * 10  # clamped
        assert bar(-1.0, scale=1.0, width=10) == ""
        with pytest.raises(ValueError):
            bar(1.0, scale=0.0)

    def test_bar_chart(self):
        text = bar_chart(["alpha", "b"], [1.0, 0.5])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 40  # max value fills the width
        assert lines[1].count("#") == 20

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        assert bar_chart([], []) == "(no data)"

    def test_stacked_bar(self):
        text = stacked_bar([0.5, 0.25, 0.25], width=8)
        assert text == "####xxoo"
        with pytest.raises(ValueError):
            stacked_bar([0.1] * 10, chars="ab")

    def test_section(self):
        text = section("Title", "body")
        assert "Title" in text and "body" in text and "-----" in text
