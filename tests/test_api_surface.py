"""The documented-API contract: every public module declares its surface.

Every module under ``src/repro`` must carry a module docstring (ruff
``D100``/``D104`` enforce the same in CI) and an ``__all__`` whose
names all resolve on import — so ``from repro.x import *`` and API
docs agree with the code.
"""

from __future__ import annotations

import ast
import importlib
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"

MODULES = sorted(
    ".".join(p.relative_to(SRC).with_suffix("").parts).removesuffix(
        ".__init__")
    for p in SRC.glob("repro/**/*.py")
)


def _tree(module: str) -> ast.Module:
    parts = module.split(".")
    path = SRC.joinpath(*parts)
    path = path / "__init__.py" if path.is_dir() else path.with_suffix(".py")
    return ast.parse(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("module", MODULES)
def test_module_has_docstring(module):
    assert ast.get_docstring(_tree(module)), f"{module} has no docstring"


@pytest.mark.parametrize("module", MODULES)
def test_module_declares_all(module):
    declares = any(
        isinstance(node, ast.Assign)
        and any(isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets)
        for node in _tree(module).body
    )
    assert declares, f"{module} does not declare __all__"


@pytest.mark.parametrize("module", MODULES)
def test_every_all_name_resolves(module):
    mod = importlib.import_module(module)
    missing = [name for name in mod.__all__ if not hasattr(mod, name)]
    assert not missing, f"{module}.__all__ names missing: {missing}"
    assert len(mod.__all__) == len(set(mod.__all__)), (
        f"{module}.__all__ has duplicates")
