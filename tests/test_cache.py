"""Tests for the set-associative cache model."""

import pytest

from repro.memsys.cache import Cache, CacheConfig
from repro.memsys.permissions import Permissions


def small_cache(assoc=2, sets=4, line=128, **kw) -> Cache:
    return Cache(CacheConfig(size_bytes=assoc * sets * line,
                             line_size=line, associativity=assoc, **kw))


class TestCacheConfig:
    def test_table1_l1_geometry(self):
        cfg = CacheConfig(size_bytes=32 * 1024, line_size=128, associativity=8)
        assert cfg.n_lines == 256
        assert cfg.n_sets == 32

    def test_table1_l2_geometry(self):
        cfg = CacheConfig(size_bytes=2 * 1024 * 1024, line_size=128,
                          associativity=16, n_banks=8)
        assert cfg.n_lines == 16384

    def test_uneven_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_size=128, associativity=2)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3 * 128 * 2, line_size=128, associativity=2)


class TestLookupInsert:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.lookup(42) is None
        c.insert(42)
        assert c.lookup(42) is not None
        assert c.hits == 1
        assert c.misses == 1

    def test_lru_eviction_within_set(self):
        c = small_cache(assoc=2, sets=4)
        # Three lines in the same set (stride = n_sets).
        c.insert(0)
        c.insert(4)
        victim = c.insert(8)
        assert victim is not None
        assert victim.line_addr == 0

    def test_lookup_refreshes_lru(self):
        c = small_cache(assoc=2, sets=4)
        c.insert(0)
        c.insert(4)
        c.lookup(0)          # 0 becomes MRU
        victim = c.insert(8)
        assert victim.line_addr == 4

    def test_reinsert_refreshes_and_merges_dirty(self):
        c = small_cache(assoc=2, sets=4)
        c.insert(0, dirty=True)
        assert c.insert(0, dirty=False) is None
        assert c.peek(0).dirty is True  # dirtiness survives a refill

    def test_different_sets_do_not_conflict(self):
        c = small_cache(assoc=1, sets=4)
        for line in range(4):
            assert c.insert(line) is None
        assert len(c) == 4

    def test_contains_and_peek_do_not_count(self):
        c = small_cache()
        c.insert(7)
        c.contains(7)
        c.peek(7)
        c.contains(8)
        assert c.hits == 0 and c.misses == 0

    def test_mark_dirty(self):
        c = small_cache()
        c.insert(3)
        assert c.mark_dirty(3) is True
        assert c.peek(3).dirty
        assert c.mark_dirty(99) is False

    def test_permissions_stored_per_line(self):
        c = small_cache()
        c.insert(5, permissions=Permissions.READ_ONLY)
        assert c.peek(5).permissions == Permissions.READ_ONLY


class TestInvalidation:
    def test_invalidate_line_returns_it(self):
        c = small_cache()
        c.insert(9, dirty=True)
        line = c.invalidate_line(9)
        assert line.dirty
        assert not c.contains(9)
        assert c.invalidate_line(9) is None

    def test_invalidate_page_drops_only_that_page(self):
        c = small_cache(assoc=4, sets=8)
        c.insert(0, page=100)
        c.insert(1, page=100)
        c.insert(2, page=200)
        dropped = c.invalidate_page(100)
        assert {l.line_addr for l in dropped} == {0, 1}
        assert c.contains(2)
        assert c.lines_of_page_resident(100) == 0

    def test_invalidate_missing_page_is_empty(self):
        c = small_cache()
        assert c.invalidate_page(12345) == []

    def test_invalidate_all(self):
        c = small_cache(assoc=4, sets=8)
        for i in range(10):
            c.insert(i, page=i // 4)
        dropped = c.invalidate_all()
        assert len(dropped) == 10
        assert len(c) == 0
        assert c.resident_pages() == {}


class TestPageTracking:
    def test_page_line_counts_follow_residency(self):
        c = small_cache(assoc=4, sets=8)
        c.insert(0, page=7)
        c.insert(8, page=7)
        assert c.lines_of_page_resident(7) == 2
        c.invalidate_line(0)
        assert c.lines_of_page_resident(7) == 1

    def test_eviction_decrements_page_count(self):
        c = small_cache(assoc=1, sets=1)
        c.insert(0, page=1)
        c.insert(1, page=2)  # evicts line 0
        assert c.lines_of_page_resident(1) == 0
        assert c.lines_of_page_resident(2) == 1

    def test_untracked_lines_have_no_page(self):
        c = small_cache()
        c.insert(0)
        assert c.resident_pages() == {}

    def test_max_lines_per_page(self):
        c = small_cache(line=128)
        assert c.max_lines_per_page() == 32


class TestBankMapping:
    """Pins the bank-selection function: low-order line-address bits.

    The docstring and implementation of ``bank_of`` disagreed once;
    these tests freeze the intended low-order interleaving so either
    kind of regression (code or doc-driven "fix") trips loudly.
    """

    def test_bank_is_line_mod_n_banks(self):
        c = small_cache(n_banks=8)
        for line in (0, 1, 7, 8, 9, 0x7F, 0x80, 123456789):
            assert c.bank_of(line) == line % 8

    def test_consecutive_lines_interleave_across_banks(self):
        c = small_cache(n_banks=8)
        assert [c.bank_of(line) for line in range(16)] == list(range(8)) * 2

    def test_non_power_of_two_banks_still_modulo(self):
        c = small_cache(n_banks=3)
        for line in (0, 1, 2, 3, 4, 5, 1000003):
            assert c.bank_of(line) == line % 3

    def test_single_bank_always_zero(self):
        c = small_cache(n_banks=1)
        assert c.bank_of(0) == c.bank_of(12345) == 0


class TestStats:
    def test_hit_ratio(self):
        c = small_cache()
        c.insert(1)
        c.lookup(1)
        c.lookup(2)
        assert c.hit_ratio() == 0.5

    def test_hit_ratio_empty(self):
        assert small_cache().hit_ratio() == 0.0
