"""Tests for the calibration harness."""

import dataclasses

import pytest

from repro.analysis.calibration import (
    OperatingPoint,
    calibration_report,
    measure,
    recommend_interval,
)
from repro.workloads.synthetic import gather_kernel


def point(**overrides) -> OperatingPoint:
    base = dict(
        workload="w", issue_interval=10.0, instructions=1000,
        requests=5000, tlb_misses=3000, vc_translations=900,
        ideal_cycles=2000.0, baseline_cycles=3500.0,
    )
    base.update(overrides)
    return OperatingPoint(**base)


class TestOperatingPoint:
    def test_derived_metrics(self):
        p = point()
        assert p.demand == pytest.approx(1.5)
        assert p.vc_demand == pytest.approx(0.45)
        assert p.baseline_slowdown == pytest.approx(1.75)
        assert p.filter_rate == pytest.approx(0.7)

    def test_zero_cycles_safe(self):
        p = point(ideal_cycles=0.0, tlb_misses=0)
        assert p.demand == 0.0
        assert p.filter_rate == 0.0


class TestRecommendInterval:
    def test_lower_target_means_longer_interval(self):
        p = point()
        relaxed = recommend_interval(p, target_demand=0.5, max_vc_demand=None)
        aggressive = recommend_interval(p, target_demand=2.0, max_vc_demand=None)
        assert relaxed > aggressive

    def test_inversion_is_consistent(self):
        # Applying the recommended interval reproduces the target λ
        # under the same linear issue model.
        p = point()
        target = 1.2
        interval = recommend_interval(p, target, n_cus=16, max_vc_demand=None)
        ideal = (p.instructions * interval + (p.requests - p.instructions)) / 16
        assert p.tlb_misses / ideal == pytest.approx(target, rel=0.01)

    def test_vc_demand_cap_stretches_interval(self):
        p = point(vc_translations=100_000)
        capped = recommend_interval(p, target_demand=2.0, max_vc_demand=0.45)
        uncapped = recommend_interval(p, target_demand=2.0, max_vc_demand=None)
        assert capped > uncapped

    def test_minimum_floor(self):
        p = point(tlb_misses=1, vc_translations=0)
        assert recommend_interval(p, target_demand=10.0,
                                  max_vc_demand=None) == 4.0

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            recommend_interval(point(), target_demand=0.0)


class TestMeasure:
    def test_measure_gather_kernel(self, small_config):
        cfg = dataclasses.replace(small_config, n_cus=4)
        trace = gather_kernel(n_pages=48, n_instructions=600, n_cus=4,
                              issue_interval=12.0, seed=3)
        p = measure(trace, cfg)
        assert p.workload == "gather_kernel"
        assert p.instructions == 600
        assert p.tlb_misses > 0
        assert p.ideal_cycles > 0
        assert p.baseline_slowdown >= 0.99

    def test_report_renders(self, small_config):
        cfg = dataclasses.replace(small_config, n_cus=4)
        trace = gather_kernel(n_pages=24, n_instructions=200, n_cus=4, seed=4)
        text = calibration_report({"gather": measure(trace, cfg)})
        assert "λ baseline" in text
        assert "gather_kernel" in text
