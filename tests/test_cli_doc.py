"""docs/CLI.md must match what the argparse parser actually renders.

The committed CLI reference is generated (``python -m
repro.experiments.cli_doc``); any flag added or changed without
regenerating the doc fails here with a diff-style message.
"""

from __future__ import annotations

import difflib
from pathlib import Path

from repro.experiments.cli import EXPERIMENTS, EXTRA_COMMANDS
from repro.experiments.cli_doc import EXPERIMENT_DESCRIPTIONS, render_cli_doc

DOC = Path(__file__).resolve().parent.parent / "docs" / "CLI.md"


def test_cli_doc_matches_parser():
    committed = DOC.read_text(encoding="utf-8")
    rendered = render_cli_doc()
    if committed != rendered:
        diff = "\n".join(difflib.unified_diff(
            committed.splitlines(), rendered.splitlines(),
            fromfile="docs/CLI.md (committed)",
            tofile="docs/CLI.md (rendered from the parser)",
            lineterm="", n=2))
        raise AssertionError(
            "docs/CLI.md is stale; regenerate with\n"
            "  PYTHONPATH=src python -m repro.experiments.cli_doc "
            "> docs/CLI.md\n" + diff)


def test_every_experiment_is_documented():
    assert set(EXPERIMENT_DESCRIPTIONS) == (
        set(EXPERIMENTS) | set(EXTRA_COMMANDS))


def test_doc_mentions_every_flag():
    """Belt and braces: no option string is missing from the table."""
    import argparse

    committed = DOC.read_text(encoding="utf-8")
    from repro.experiments.cli import build_parser
    for action in build_parser()._actions:
        if isinstance(action, argparse._HelpAction):
            continue  # -h/--help is implicit, not documented in the table
        for option in action.option_strings:
            assert option in committed, f"{option} missing from docs/CLI.md"
