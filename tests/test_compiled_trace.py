"""Compiled binary traces: vectorized coalescing, the on-disk store,
registry integration, and replay bit-identity.

The load-bearing guarantee is the golden test: a trace that went
through compile → save → mmap-load → simulate produces *bit-identical*
results (every counter and every float cycle count) to a freshly
generated one.  Anything less would silently skew every figure.
"""

import json
import random

import pytest

from repro.gpu.coalescer import Coalescer, coalesce_arrays
from repro.memsys.permissions import Permissions
from repro.memsys.tlb import TLB
from repro.system.config import SoCConfig
from repro.system.designs import BASELINE_512, IDEAL_MMU, VC_WITH_OPT
from repro.system.run import simulate
from repro.workloads import registry
from repro.workloads.compiled import (
    TraceStore,
    compile_trace,
    load_compiled,
    store_key,
)
from repro.workloads.trace import TraceValidationError, validate_trace


@pytest.fixture(autouse=True)
def _isolate_registry(monkeypatch):
    """Each test gets a private registry memo and no ambient store."""
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    monkeypatch.setattr(registry, "_cache", {})
    monkeypatch.setattr(registry, "_trace_store", None)
    monkeypatch.setattr(registry, "_trace_store_pinned", False)
    yield


def _small_trace():
    return registry.load_fresh("bfs", scale=0.05)


def _requests_equal(a, b):
    assert len(a) == len(b)
    for sa, sb in zip(a, b):
        assert len(sa) == len(sb)
        for ra, rb in zip(sa, sb):
            if ra is None:
                assert rb is None
                continue
            assert len(ra) == len(rb)
            for x, y in zip(ra, rb):
                assert (x.line_addr, x.is_write, x.n_lanes, x.vpn) == (
                    y.line_addr, y.is_write, y.n_lanes, y.vpn)


class TestCoalesceArrays:
    def test_matches_coalescer_on_random_instructions(self):
        rng = random.Random(11)
        insts = [[rng.randrange(0, 1 << 20)
                  for _ in range(rng.randint(1, 32))] for _ in range(300)]
        lanes = [a for inst in insts for a in inst]
        counts = [len(inst) for inst in insts]
        for line_size in (32, 64, 128):
            coalescer = Coalescer(line_size=line_size)
            reference = [coalescer.coalesce(inst) for inst in insts]
            req_line, req_lanes, per_inst = coalesce_arrays(
                lanes, counts, line_size)
            pos = 0
            for i, reqs in enumerate(reference):
                assert per_inst[i] == len(reqs)
                for r in reqs:
                    assert req_line[pos] == r.line_addr
                    assert req_lanes[pos] == r.n_lanes
                    pos += 1
            assert pos == len(req_line)

    def test_first_appearance_order_preserved(self):
        # Lanes revisit line 0 after line 5: request order must be 5, 0.
        req_line, req_lanes, per_inst = coalesce_arrays(
            [5 * 64, 0, 5 * 64 + 4, 8], [4], 64)
        assert list(req_line) == [5, 0]
        assert list(req_lanes) == [2, 2]
        assert list(per_inst) == [2]

    def test_empty_and_mismatched_inputs(self):
        req_line, req_lanes, per_inst = coalesce_arrays([], [], 64)
        assert len(req_line) == 0 and len(req_lanes) == 0
        with pytest.raises(ValueError):
            coalesce_arrays([1, 2, 3], [2], 64)
        with pytest.raises(ValueError):
            coalesce_arrays([1], [1], 0)


class TestCompiledTrace:
    def test_coalesced_lists_identical_to_fresh(self):
        trace = _small_trace()
        compiled = compile_trace(trace)
        compiled.validate_fast()
        _requests_equal(trace.coalesced_per_cu(), compiled.coalesced_per_cu())

    def test_simulate_surface(self):
        trace = _small_trace()
        compiled = compile_trace(trace)
        assert compiled.n_cus == trace.n_cus
        assert compiled.n_instructions == trace.n_instructions
        assert compiled.issue_interval == trace.issue_interval
        assert compiled.name == trace.name
        assert compiled.address_space is trace.address_space

    def test_thaw_delegates_full_trace_api(self):
        trace = _small_trace()
        compiled = compile_trace(trace)
        # Attributes outside the compiled surface thaw transparently.
        assert compiled.footprint_pages() == trace.footprint_pages()
        assert len(compiled.per_cu) == trace.n_cus
        assert compiled.thaw() is compiled.thaw()

    def test_validate_trace_dispatches_to_fast_path(self):
        compiled = compile_trace(_small_trace())
        assert validate_trace(compiled) is compiled
        # Break an invariant the vectorized checks must catch.
        compiled._lanes = compiled._lanes[:-1]
        with pytest.raises(TraceValidationError):
            validate_trace(compiled)


class TestStoreRoundTrip:
    def test_bit_identical_simulation(self, tmp_path):
        """The golden guarantee: mmap-loaded replay == fresh generation."""
        fresh = _small_trace()
        store = TraceStore(tmp_path)
        assert store.store(fresh, 0.05, None) is not None
        for design in (IDEAL_MMU, BASELINE_512, VC_WITH_OPT):
            a = registry.load_fresh("bfs", scale=0.05)
            b = store.load("bfs", 0.05, None)
            results = []
            for trace in (a, b):
                config = design.soc_config(SoCConfig())
                hierarchy = design.build(
                    config, {0: trace.address_space.page_table})
                results.append(simulate(trace, hierarchy, config,
                                        design=design.name))
            # repr covers every counter and exact float cycle count.
            assert repr(results[0]) == repr(results[1])

    def test_round_trip_preserves_metadata_and_layout(self, tmp_path):
        fresh = _small_trace()
        store = TraceStore(tmp_path)
        store.store(fresh, 0.05, None)
        loaded = store.load("bfs", 0.05, None)
        assert loaded.issue_interval == fresh.issue_interval
        assert loaded.metadata == fresh.metadata
        assert len(loaded.address_space.mappings) == len(
            fresh.address_space.mappings)
        for m1, m2 in zip(fresh.address_space.mappings,
                          loaded.address_space.mappings):
            assert (m1.base_va, m1.n_pages) == (m2.base_va, m2.n_pages)
            assert fresh.address_space.translate(m1.base_va) == \
                loaded.address_space.translate(m2.base_va)
        _requests_equal(fresh.coalesced_per_cu(), loaded.coalesced_per_cu())

    def test_missing_is_a_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.load("bfs", 0.05, None) is None
        assert store.misses == 1 and store.hits == 0

    def test_corrupt_meta_falls_back_and_repairs(self, tmp_path):
        fresh = _small_trace()
        store = TraceStore(tmp_path)
        path = store.store(fresh, 0.05, None)
        (path / "meta.json").write_text("{ not json")
        assert store.load("bfs", 0.05, None) is None
        assert not path.exists()  # quarantined: removed for regeneration
        # The next store repairs the cache.
        assert store.store(fresh, 0.05, None) is not None
        assert store.load("bfs", 0.05, None) is not None

    def test_truncated_array_falls_back(self, tmp_path):
        fresh = _small_trace()
        store = TraceStore(tmp_path)
        path = store.store(fresh, 0.05, None)
        lanes = path / "lanes.npy"
        lanes.write_bytes(lanes.read_bytes()[:64])
        assert load_compiled(path) is None
        assert not path.exists()

    def test_count_mismatch_falls_back(self, tmp_path):
        fresh = _small_trace()
        store = TraceStore(tmp_path)
        path = store.store(fresh, 0.05, None)
        meta = json.loads((path / "meta.json").read_text())
        meta["counts"]["requests"] += 1
        (path / "meta.json").write_text(json.dumps(meta))
        assert load_compiled(path) is None

    def test_version_skew_falls_back(self, tmp_path):
        fresh = _small_trace()
        store = TraceStore(tmp_path)
        path = store.store(fresh, 0.05, None)
        meta = json.loads((path / "meta.json").read_text())
        meta["format"] = 999
        (path / "meta.json").write_text(json.dumps(meta))
        assert load_compiled(path) is None

    def test_store_key_spells_out_identity(self):
        key = store_key("bfs", 0.1, None, 64)
        assert "bfs" in key and "0.1" in key and "ls64" in key
        assert store_key("bfs", 0.1, 7) != key


class TestRegistryIntegration:
    def test_cold_load_stores_then_warm_load_hits(self, tmp_path):
        registry.set_trace_cache(tmp_path)
        cold = registry.load("bfs", scale=0.05)
        stats = registry.trace_cache_stats()
        assert stats == {"hits": 0, "misses": 1, "stores": 1}
        # Same process: memoized, no new store traffic.
        assert registry.load("bfs", scale=0.05) is cold
        assert registry.trace_cache_stats() == stats
        # Simulated new process: memo cleared, the store satisfies it.
        registry.clear_cache()
        warm = registry.load("bfs", scale=0.05)
        stats = registry.trace_cache_stats()
        assert stats["hits"] == 1
        _requests_equal(cold.coalesced_per_cu(), warm.coalesced_per_cu())

    def test_load_fresh_never_touches_store(self, tmp_path):
        registry.set_trace_cache(tmp_path)
        registry.load_fresh("bfs", scale=0.05)
        assert registry.trace_cache_stats() == {
            "hits": 0, "misses": 0, "stores": 0}
        assert list(tmp_path.iterdir()) == []

    def test_setter_exports_env_for_pool_workers(self, tmp_path, monkeypatch):
        import os
        registry.set_trace_cache(tmp_path)
        assert os.environ["REPRO_TRACE_CACHE"] == str(tmp_path)
        registry.set_trace_cache(None)
        assert "REPRO_TRACE_CACHE" not in os.environ

    def test_env_var_resolves_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        registry.load("bfs", scale=0.05)
        assert registry.trace_cache_stats()["stores"] == 1

    def test_disabled_store_reports_zero(self):
        assert registry.trace_cache_stats() == {
            "hits": 0, "misses": 0, "stores": 0}


class TestMicroMemoInvalidation:
    """Shootdowns and remaps must never be served a stale memoized entry."""

    def test_shootdown_clears_memo(self):
        tlb = TLB(capacity=8)
        tlb.insert(5, ppn=50)
        assert tlb.lookup(5).ppn == 50  # memo now warm on vpn 5
        tlb.invalidate(5)
        assert tlb.lookup(5) is None  # a stale memo would return ppn 50

    def test_remap_after_shootdown_serves_new_translation(self):
        tlb = TLB(capacity=8)
        tlb.insert(5, ppn=50, permissions=Permissions.READ_WRITE)
        tlb.lookup(5)
        # Chaos-style remap: shootdown, then the walker refills with the
        # new physical frame.
        tlb.invalidate(5)
        tlb.insert(5, ppn=99, permissions=Permissions.READ_ONLY)
        entry = tlb.lookup(5)
        assert entry.ppn == 99
        assert entry.permissions == Permissions.READ_ONLY

    def test_full_shootdown_clears_memo(self):
        tlb = TLB(capacity=8)
        tlb.insert(3, ppn=30)
        tlb.lookup(3)
        assert tlb.invalidate_all() == 1
        assert tlb.lookup(3) is None

    def test_memo_does_not_skew_counters(self):
        """Memo hits and probe hits are attributed identically."""
        tlb = TLB(capacity=8)
        tlb.insert(1, ppn=10)
        tlb.insert(2, ppn=20)
        tlb.lookup(1)   # probe hit (memo was on 2 after insert)
        tlb.lookup(1)   # memo hit
        tlb.lookup(1)   # memo hit
        tlb.lookup(9)   # miss
        assert tlb.hits == 3
        assert tlb.misses == 1

    def test_chaos_run_is_deterministic_with_memo(self):
        """End-to-end: fault-injected runs (shootdowns, remaps, unmaps)
        stay deterministic and invariant-clean with the micro-memo in
        the translation path."""
        from repro.experiments import chaos

        kwargs = dict(workloads=("bfs",), rates=(0.01,), seed=3, scale=0.05)
        a = chaos.run(**kwargs)
        b = chaos.run(**kwargs)
        assert repr(a.points) == repr(b.points)
