"""Tests for SoC configuration and the Table 2 design presets."""

import dataclasses

import pytest

from repro.core.l1_only import L1OnlyVirtualHierarchy
from repro.core.virtual_hierarchy import VirtualCacheHierarchy
from repro.memsys.address_space import AddressSpace
from repro.system.config import SoCConfig
from repro.system.designs import (
    BASELINE_16K,
    BASELINE_512,
    BASELINE_LARGE_PER_CU,
    IDEAL_MMU,
    L1_ONLY_VC_128,
    L1_ONLY_VC_32,
    MMUDesign,
    TABLE2_DESIGNS,
    VC_WITHOUT_OPT,
    VC_WITH_OPT,
    baseline_unlimited_bandwidth,
    baseline_with_bandwidth,
)
from repro.system.physical_hierarchy import PhysicalHierarchy


class TestSoCConfig:
    def test_table1_defaults(self):
        cfg = SoCConfig()
        assert cfg.n_cus == 16
        assert cfg.l1.size_bytes == 32 * 1024
        assert cfg.l2.size_bytes == 2 * 1024 * 1024
        assert cfg.l2.n_banks == 8
        assert cfg.line_size == 128
        assert cfg.per_cu_tlb_entries == 32
        assert cfg.fbt_entries == 16384

    def test_with_per_cu_tlb(self):
        cfg = SoCConfig().with_per_cu_tlb(128)
        assert cfg.per_cu_tlb_entries == 128
        assert SoCConfig().per_cu_tlb_entries == 32  # original untouched

    def test_with_iommu(self):
        cfg = SoCConfig().with_iommu(entries=16384, bandwidth=2.0)
        assert cfg.iommu.shared_tlb_entries == 16384
        assert cfg.iommu.bandwidth == 2.0
        partial = SoCConfig().with_iommu(bandwidth=3.0)
        assert partial.iommu.shared_tlb_entries == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            SoCConfig(n_cus=0)
        with pytest.raises(ValueError):
            SoCConfig(lanes_per_cu=0)
        bad_l2 = dataclasses.replace(
            SoCConfig().l2, line_size=64, associativity=16)
        with pytest.raises(ValueError):
            SoCConfig(l2=bad_l2)  # mismatched line sizes


class TestDesignPresets:
    def test_table2_matches_paper(self):
        by_name = {d.name: d for d in TABLE2_DESIGNS}
        assert by_name["IDEAL MMU"].ideal
        assert by_name["Baseline 512"].per_cu_tlb_entries == 32
        assert by_name["Baseline 16K"].iommu_entries == 16384
        assert by_name["VC W/O OPT"].per_cu_tlb_entries is None
        assert not by_name["VC W/O OPT"].fbt_as_second_level_tlb
        assert by_name["VC With OPT"].fbt_as_second_level_tlb

    def test_figure_specific_presets(self):
        assert BASELINE_LARGE_PER_CU.per_cu_tlb_entries == 128
        assert L1_ONLY_VC_32.per_cu_tlb_entries == 32
        assert L1_ONLY_VC_128.per_cu_tlb_entries == 128
        bw2 = baseline_with_bandwidth(2.0)
        assert bw2.iommu_bandwidth == 2.0 and bw2.iommu_entries == 16384
        unlimited = baseline_unlimited_bandwidth()
        assert unlimited.iommu_bandwidth == float("inf")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MMUDesign(name="bad", kind="quantum")

    def test_soc_config_override(self, small_config):
        cfg = BASELINE_16K.soc_config(small_config)
        assert cfg.iommu.shared_tlb_entries == 16384
        assert cfg.per_cu_tlb_entries == 32
        assert cfg.n_cus == small_config.n_cus  # everything else kept


class TestBuilders:
    def _tables(self):
        space = AddressSpace(asid=0)
        return {0: space.page_table}

    def test_physical_kinds(self, small_config):
        h = BASELINE_512.build(small_config, self._tables())
        assert isinstance(h, PhysicalHierarchy)
        assert not h.ideal
        ideal = IDEAL_MMU.build(small_config, self._tables())
        assert ideal.ideal

    def test_vc_kinds(self, small_config):
        h = VC_WITH_OPT.build(small_config, self._tables())
        assert isinstance(h, VirtualCacheHierarchy)
        assert h.fbt_as_second_level_tlb
        h2 = VC_WITHOUT_OPT.build(small_config, self._tables())
        assert not h2.fbt_as_second_level_tlb
        assert h2.iommu.second_level is None

    def test_l1_only_kind(self, small_config):
        h = L1_ONLY_VC_32.build(small_config, self._tables())
        assert isinstance(h, L1OnlyVirtualHierarchy)
        assert h.per_cu_tlbs[0].capacity == 32

    def test_built_hierarchies_use_overridden_config(self, small_config):
        h = BASELINE_16K.build(small_config, self._tables())
        assert h.iommu.shared_tlb.capacity == 16384
