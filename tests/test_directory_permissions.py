"""Tests for the coherence directory stub and the permissions model."""


from repro.memsys.directory import CoherenceProbe, Directory
from repro.memsys.permissions import (
    PageFault,
    PermissionFault,
    Permissions,
    ReadWriteSynonymFault,
)


class TestPermissions:
    def test_read_write_allows_both(self):
        assert Permissions.READ_WRITE.allows(is_write=False)
        assert Permissions.READ_WRITE.allows(is_write=True)

    def test_read_only_rejects_writes(self):
        assert Permissions.READ_ONLY.allows(is_write=False)
        assert not Permissions.READ_ONLY.allows(is_write=True)

    def test_none_rejects_everything(self):
        assert not Permissions.NONE.allows(is_write=False)
        assert not Permissions.NONE.allows(is_write=True)

    def test_flags_compose(self):
        rwx = Permissions.READ | Permissions.WRITE | Permissions.EXECUTE
        assert rwx.allows(is_write=True)
        assert Permissions.EXECUTE in rwx

    def test_flag_values_roundtrip_through_int(self):
        # Serialization relies on IntFlag round-tripping.
        for p in (Permissions.READ_ONLY, Permissions.READ_WRITE,
                  Permissions.NONE):
            assert Permissions(int(p)) == p


class TestFaultTypes:
    def test_permission_fault_message(self):
        fault = PermissionFault(vpn=0x123, is_write=True,
                                permissions=Permissions.READ_ONLY)
        assert "write" in str(fault)
        assert "0x123" in str(fault)
        assert fault.vpn == 0x123

    def test_page_fault_message(self):
        fault = PageFault(vpn=0x77, asid=3)
        assert "0x77" in str(fault)
        assert fault.asid == 3

    def test_rw_synonym_fault_fields(self):
        fault = ReadWriteSynonymFault(ppn=9, leading_vpn=100, vpn=200)
        assert fault.ppn == 9
        assert fault.leading_vpn == 100
        assert fault.vpn == 200
        assert "synonym" in str(fault)


class TestDirectory:
    def test_fill_and_writeback_tracking(self):
        d = Directory()
        d.record_gpu_fill(42)
        assert d.gpu_may_hold(42)
        d.record_gpu_writeback(42)
        assert not d.gpu_may_hold(42)

    def test_writeback_of_untracked_line_is_noop(self):
        d = Directory()
        d.record_gpu_writeback(7)  # must not raise
        assert not d.gpu_may_hold(7)

    def test_probe_construction_counts(self):
        d = Directory()
        probe = d.make_probe(99)
        assert isinstance(probe, CoherenceProbe)
        assert probe.physical_line == 99
        assert probe.filtered is None  # not yet serviced
        assert d.counters["directory.probes"] == 1

    def test_counters(self):
        d = Directory()
        d.record_gpu_fill(1)
        d.record_gpu_fill(2)
        d.record_gpu_writeback(1)
        assert d.counters["directory.fills"] == 2
        assert d.counters["directory.writebacks"] == 1
