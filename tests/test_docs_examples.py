"""The shell commands shown in the docs must actually work.

Extracts every ``repro-experiment ...`` invocation from the fenced
code blocks in README.md and EXPERIMENTS.md, validates it against the
real argparse parser (unknown flags or experiment names fail), and
smoke-runs the cheap ones end-to-end.
"""

from __future__ import annotations

import shlex
from pathlib import Path

import pytest

from repro.experiments.cli import EXPERIMENTS, EXTRA_COMMANDS, build_parser, main

ROOT = Path(__file__).resolve().parent.parent
DOCS = ["README.md", "EXPERIMENTS.md"]
VALID_EXPERIMENTS = set(EXPERIMENTS) | set(EXTRA_COMMANDS)
#: Experiments cheap enough to run for real during the test.
CHEAP = {"table1", "table2", "designs", "workloads"}


def _fenced_blocks(text: str):
    """Yield the body of every ``` fenced code block."""
    inside = False
    block: list = []
    for line in text.splitlines():
        if line.strip().startswith("```"):
            if inside:
                yield block
                block = []
            inside = not inside
        elif inside:
            block.append(line)


def _strip_comment(line: str) -> str:
    """Drop a trailing ``# ...`` annotation (doc commands carry them)."""
    for marker in (" # ", "\t# "):
        if marker in line:
            line = line.split(marker, 1)[0]
    if line.strip().startswith("#"):
        return ""
    return line.rstrip()


def _doc_commands():
    """Every repro-experiment invocation in the docs, continuations joined."""
    commands = []
    for doc in DOCS:
        lines: list = []
        for block in _fenced_blocks((ROOT / doc).read_text(encoding="utf-8")):
            pending = ""
            for raw in block:
                line = _strip_comment(raw)
                if not line:
                    continue
                joined = (pending + " " + line.strip()).strip() \
                    if pending else line.strip()
                if joined.endswith("\\"):
                    pending = joined[:-1].strip()
                    continue
                pending = ""
                lines.append(joined)
        commands.extend(
            (doc, cmd) for cmd in lines if cmd.startswith("repro-experiment"))
    assert commands, "the docs no longer show any repro-experiment commands?"
    return commands


@pytest.mark.parametrize(
    "doc,command", _doc_commands(),
    ids=[f"{doc}:{cmd[:60]}" for doc, cmd in _doc_commands()])
def test_documented_command_parses(doc, command):
    argv = shlex.split(command)[1:]  # drop the program name
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit:
        pytest.fail(f"{doc} shows a command the CLI rejects: {command}")
    if not args.list:
        assert args.experiment in VALID_EXPERIMENTS, (
            f"{doc} references unknown experiment {args.experiment!r} "
            f"in: {command}")


def test_cheap_documented_commands_run(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # any output files land in tmp
    ran = 0
    for _doc, command in _doc_commands():
        argv = shlex.split(command)[1:]
        args = build_parser().parse_args(argv)
        if args.list or (args.experiment in CHEAP and not args.svg):
            assert main(argv) == 0
            assert capsys.readouterr().out.strip()
            ran += 1
    # Regardless of what the docs show, the canonical cheap paths work.
    assert main(["--list"]) == 0
    listing = capsys.readouterr().out
    for name in sorted(VALID_EXPERIMENTS):
        assert name in listing
    for name in sorted(CHEAP):
        assert main([name]) == 0
        assert capsys.readouterr().out.strip()
