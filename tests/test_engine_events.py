"""Tests for the discrete-event kernel."""

import pytest

from repro.engine.events import EventQueue, Simulator


class TestEventQueue:
    def test_empty_queue(self):
        q = EventQueue()
        assert len(q) == 0
        assert q.peek_time() is None

    def test_events_fire_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(5.0, order.append, "b")
        q.push(1.0, order.append, "a")
        q.push(9.0, order.append, "c")
        while len(q):
            _, cb, args = q.pop()
            cb(*args)
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        q = EventQueue()
        order = []
        for tag in ("first", "second", "third"):
            q.push(3.0, order.append, tag)
        while len(q):
            _, cb, args = q.pop()
            cb(*args)
        assert order == ["first", "second", "third"]

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1.0, lambda: None)

    def test_peek_returns_earliest(self):
        q = EventQueue()
        q.push(7.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.peek_time() == 2.0


class TestSimulator:
    def test_clock_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "x")
        sim.schedule(5.0, fired.append, "y")
        n = sim.run()
        assert n == 2
        assert fired == ["y", "x"]
        assert sim.now == 10.0

    def test_run_until_stops_at_limit(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, 1)
        sim.schedule(50.0, fired.append, 2)
        sim.run(until=20.0)
        assert fired == [1]
        assert sim.pending_events() == 1
        assert sim.now == 20.0

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_fire_due_events_advances_clock(self):
        sim = Simulator()
        sim.schedule(4.0, lambda: None)
        fired = sim.fire_due_events(10.0)
        assert fired == 1
        assert sim.now == 10.0

    def test_advance_to_never_goes_backwards(self):
        sim = Simulator()
        sim.advance_to(8.0)
        sim.advance_to(3.0)
        assert sim.now == 8.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_cycle_ns_conversion_roundtrip(self):
        sim = Simulator(frequency_ghz=0.7)
        assert sim.cycles_to_ns(700) == pytest.approx(1000.0)
        assert sim.ns_to_cycles(sim.cycles_to_ns(123.0)) == pytest.approx(123.0)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            Simulator(frequency_ghz=0.0)
