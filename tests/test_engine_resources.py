"""Tests for the shared-resource queueing models."""

import pytest

from repro.engine.resources import (
    BandwidthLink,
    BankedServer,
    ThreadPool,
    ThroughputServer,
    WindowedServer,
)


class TestThroughputServer:
    def test_idle_server_serves_immediately(self):
        s = ThroughputServer(rate=1.0)
        assert s.request(10.0) == 10.0

    def test_back_to_back_requests_serialize(self):
        s = ThroughputServer(rate=1.0)
        assert s.request(0.0) == 0.0
        assert s.request(0.0) == 1.0
        assert s.request(0.0) == 2.0

    def test_rate_scales_service_interval(self):
        s = ThroughputServer(rate=2.0)
        assert s.request(0.0) == 0.0
        assert s.request(0.0) == 0.5
        assert s.request(0.0) == 1.0

    def test_gap_drains_queue(self):
        s = ThroughputServer(rate=1.0)
        s.request(0.0)
        s.request(0.0)
        # Arriving after the backlog clears: served immediately.
        assert s.request(100.0) == 100.0

    def test_queue_delay_accounting(self):
        s = ThroughputServer(rate=1.0)
        for _ in range(4):
            s.request(0.0)
        assert s.total_requests == 4
        assert s.total_queue_delay == 0 + 1 + 2 + 3

    def test_queue_delay_probe(self):
        s = ThroughputServer(rate=1.0)
        s.request(0.0)
        s.request(0.0)
        assert s.queue_delay(0.0) == pytest.approx(2.0)
        assert s.queue_delay(50.0) == 0.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ThroughputServer(rate=0.0)

    def test_reset(self):
        s = ThroughputServer()
        s.request(0.0)
        s.request(0.0)
        s.reset()
        assert s.request(0.0) == 0.0
        assert s.total_requests == 1


class TestWindowedServer:
    def test_under_capacity_serves_immediately(self):
        s = WindowedServer(rate=1.0)
        for i in range(int(WindowedServer.WINDOW_CYCLES)):
            assert s.request(float(i)) == float(i)

    def test_overflow_queues(self):
        s = WindowedServer(rate=1.0)
        window = int(WindowedServer.WINDOW_CYCLES)
        for _ in range(window):
            s.request(0.0)
        # The window's capacity is spent: the next request queues.
        assert s.request(0.0) == pytest.approx(1.0)
        assert s.request(0.0) == pytest.approx(2.0)

    def test_out_of_order_arrivals_do_not_block(self):
        # The regression this class exists for: a future-stamped request
        # (synonym replay) must not delay an earlier-stamped one.
        s = WindowedServer(rate=1.0)
        s.request(500.0)
        assert s.request(600.0) == 600.0

    def test_old_window_arrival_clamped_into_current_window(self):
        # Regression: an arrival stamped in an already-closed window is
        # charged to the current window's capacity, so its service must
        # be clamped into that window — not stamped back at the stale
        # arrival time with the newer window's congestion.
        s = WindowedServer(rate=1.0)
        w = WindowedServer.WINDOW_CYCLES
        for _ in range(int(w)):
            s.request(4 * w)  # spend window 4's whole capacity
        assert s.request(0.0) == pytest.approx(4 * w + 1.0)
        assert s.total_queue_delay == pytest.approx(1.0)

    def test_old_window_arrival_under_capacity_serves_at_window_start(self):
        s = WindowedServer(rate=1.0)
        w = WindowedServer.WINDOW_CYCLES
        s.request(4 * w)  # opens window 4
        # Plenty of capacity left: the stale arrival serves at the
        # current window's start, never earlier.
        assert s.request(10.0) == pytest.approx(4 * w)
        assert s.total_queue_delay == 0.0

    def test_new_window_resets(self):
        s = WindowedServer(rate=1.0)
        for _ in range(1000):
            s.request(0.0)
        w = WindowedServer.WINDOW_CYCLES
        assert s.request(w * 5) == w * 5

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            WindowedServer(rate=0.0)

    def test_reset(self):
        s = WindowedServer(rate=1.0)
        for _ in range(1000):
            s.request(0.0)
        s.reset()
        assert s.request(0.0) == 0.0
        assert s.total_requests == 1


class TestBankedServer:
    def test_different_banks_do_not_conflict(self):
        b = BankedServer(n_banks=4)
        assert b.request(0.0, 0) == 0.0
        assert b.request(0.0, 1) == 0.0
        assert b.request(0.0, 2) == 0.0

    def test_same_bank_conflicts_once_window_capacity_spent(self):
        b = BankedServer(n_banks=4)
        window = int(WindowedServer.WINDOW_CYCLES)
        for _ in range(window):
            b.request(0.0, 2)
        assert b.request(0.0, 2) == pytest.approx(1.0)
        # The other banks are unaffected.
        assert b.request(0.0, 3) == 0.0

    def test_bank_index_wraps(self):
        b = BankedServer(n_banks=4)
        window = int(WindowedServer.WINDOW_CYCLES)
        for _ in range(window + 1):
            b.request(0.0, 1)
        # Bank 5 maps onto bank 1 and sees its backlog.
        assert b.request(0.0, 5) > 0.0

    def test_totals_aggregate_across_banks(self):
        b = BankedServer(n_banks=2)
        b.request(0.0, 0)
        b.request(0.0, 1)
        assert b.total_requests == 2

    def test_needs_at_least_one_bank(self):
        with pytest.raises(ValueError):
            BankedServer(n_banks=0)


class TestThreadPool:
    def test_parallel_up_to_thread_count(self):
        p = ThreadPool(n_threads=2)
        assert p.request(0.0, 10.0) == 10.0
        assert p.request(0.0, 10.0) == 10.0
        # Third job waits for a thread.
        assert p.request(0.0, 10.0) == 20.0

    def test_earliest_thread_wins(self):
        p = ThreadPool(n_threads=2)
        p.request(0.0, 5.0)
        p.request(0.0, 50.0)
        # Next job starts when the 5-cycle job's thread frees up.
        assert p.request(0.0, 1.0) == 6.0

    def test_queue_delay_tracked(self):
        p = ThreadPool(n_threads=1)
        p.request(0.0, 10.0)
        p.request(0.0, 10.0)
        assert p.total_queue_delay == 10.0

    def test_negative_service_rejected(self):
        p = ThreadPool(n_threads=1)
        with pytest.raises(ValueError):
            p.request(0.0, -1.0)

    def test_sixteen_concurrent_walks(self):
        # The Table 1 PTW: 16 concurrent walks absorb a burst.
        p = ThreadPool(n_threads=16)
        finishes = [p.request(0.0, 100.0) for _ in range(16)]
        assert all(f == 100.0 for f in finishes)
        assert p.request(0.0, 100.0) == 200.0


class TestBandwidthLink:
    def test_latency_only_when_under_capacity(self):
        link = BandwidthLink(latency=100.0, bytes_per_cycle=256.0)
        assert link.request(0.0, 128) == pytest.approx(100.0 + 128 / 256.0)

    def test_unlimited_bandwidth_is_pure_latency(self):
        link = BandwidthLink(latency=7.0)
        assert link.request(3.0, 10**9) == 10.0

    def test_window_overflow_delays(self):
        link = BandwidthLink(latency=0.0, bytes_per_cycle=1.0)
        window = BandwidthLink.WINDOW_CYCLES
        # Fill the window's whole capacity in one request...
        link.request(0.0, int(window))
        # ...the next request in the same window queues behind it.
        t = link.request(0.0, 100)
        assert t == pytest.approx(100 + 100 / 1.0)

    def test_new_window_resets_accounting(self):
        link = BandwidthLink(latency=0.0, bytes_per_cycle=1.0)
        window = BandwidthLink.WINDOW_CYCLES
        link.request(0.0, int(window * 4))  # badly oversubscribed
        # A request in a later window starts fresh.
        t = link.request(window * 10, 1)
        assert t == pytest.approx(window * 10 + 1)

    def test_future_stamped_request_does_not_chain_latency(self):
        # The regression this design exists for: a write-back stamped in
        # the future must not delay unrelated same-window requests by a
        # full memory latency.
        link = BandwidthLink(latency=160.0, bytes_per_cycle=256.0)
        link.request(500.0, 128)   # future-stamped write-back
        t = link.request(10.0, 128)
        assert t < 200.0  # ≈ latency, not 660+

    def test_byte_accounting(self):
        link = BandwidthLink(latency=1.0, bytes_per_cycle=10.0)
        link.request(0.0, 100)
        link.request(0.0, 50)
        assert link.total_bytes == 150
        assert link.total_requests == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BandwidthLink(latency=-1.0)
        with pytest.raises(ValueError):
            BandwidthLink(latency=0.0, bytes_per_cycle=0.0)
