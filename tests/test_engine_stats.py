"""Tests for counters, interval samplers, and lifetime trackers."""


import pytest

from repro.engine.stats import (
    Counters,
    IntervalSampler,
    LifetimeTracker,
    cdf,
    fraction_at_or_below,
)


class TestCounters:
    def test_missing_counter_reads_zero(self):
        c = Counters()
        assert c["nothing"] == 0
        assert "nothing" not in c

    def test_add_and_read(self):
        c = Counters()
        c.add("hits")
        c.add("hits", 4)
        assert c["hits"] == 5
        assert "hits" in c

    def test_ratio(self):
        c = Counters()
        c.add("misses", 3)
        c.add("accesses", 12)
        assert c.ratio("misses", "accesses") == 0.25

    def test_ratio_with_zero_denominator(self):
        c = Counters()
        assert c.ratio("a", "b") == 0.0

    def test_as_dict_is_a_snapshot(self):
        c = Counters()
        c.add("x")
        snapshot = c.as_dict()
        c.add("x")
        assert snapshot["x"] == 1

    def test_reset(self):
        c = Counters()
        c.add("x", 10)
        c.reset()
        assert c["x"] == 0


class TestIntervalSampler:
    def test_all_events_in_one_window(self):
        s = IntervalSampler(interval_cycles=100.0)
        for t in (1.0, 50.0, 99.0):
            s.record(t)
        stats = s.rate_stats()
        assert stats.n_samples == 1
        assert stats.mean == pytest.approx(0.03)
        assert stats.maximum == pytest.approx(0.03)
        assert stats.std == 0.0

    def test_empty_windows_between_bursts_count(self):
        s = IntervalSampler(interval_cycles=10.0)
        s.record(5.0)       # window 0
        s.record(35.0)      # window 3; windows 1-2 empty
        stats = s.rate_stats()
        assert stats.n_samples == 4
        assert stats.mean == pytest.approx(2 / 40)

    def test_maximum_captures_burst(self):
        s = IntervalSampler(interval_cycles=10.0)
        for _ in range(20):
            s.record(3.0)   # 2 events/cycle burst in window 0
        s.record(95.0)
        stats = s.rate_stats()
        assert stats.maximum == pytest.approx(2.0)
        assert stats.mean < 0.5

    def test_fraction_above_threshold(self):
        s = IntervalSampler(interval_cycles=10.0)
        for _ in range(15):
            s.record(1.0)   # window 0: 1.5/cycle
        s.record(11.0)      # window 1: 0.1/cycle
        stats = s.rate_stats()
        assert stats.fraction_above(1.0) == pytest.approx(0.5)

    def test_end_time_extends_denominator(self):
        s = IntervalSampler(interval_cycles=10.0)
        s.record(5.0)
        stats = s.rate_stats(end_time=100.0)
        assert stats.n_samples == 11
        assert stats.mean == pytest.approx(1 / 110)

    def test_no_events(self):
        s = IntervalSampler(interval_cycles=10.0)
        stats = s.rate_stats()
        assert stats.n_samples == 0
        assert stats.mean == 0.0
        assert stats.fraction_above(0.0) == 0.0

    def test_record_with_count(self):
        s = IntervalSampler(interval_cycles=10.0)
        s.record(0.0, count=30)
        assert s.total_events == 30

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalSampler(interval_cycles=0.0)

    def test_negative_time_rejected(self):
        s = IntervalSampler(interval_cycles=10.0)
        with pytest.raises(ValueError):
            s.record(-5.0)

    def test_std_of_two_windows(self):
        s = IntervalSampler(interval_cycles=10.0)
        for _ in range(10):
            s.record(0.0)   # window 0: 1.0/cycle
        for _ in range(2):
            s.record(10.0)  # window 1: 0.2/cycle
        stats = s.rate_stats()
        assert stats.mean == pytest.approx(0.6)
        assert stats.std == pytest.approx(0.4)


class TestLifetimeTracker:
    def test_residence_time_is_insert_to_evict(self):
        t = LifetimeTracker()
        t.on_insert("page", 100.0)
        t.on_evict("page", 250.0)
        assert t.residence_times == [150.0]

    def test_active_lifetime_is_insert_to_last_access(self):
        t = LifetimeTracker()
        t.on_insert("line", 0.0)
        t.on_access("line", 60.0)
        t.on_access("line", 80.0)
        t.on_evict("line", 500.0)
        assert t.active_lifetimes == [80.0]
        assert t.residence_times == [500.0]

    def test_untracked_access_is_noop(self):
        t = LifetimeTracker()
        t.on_access("ghost", 5.0)
        t.on_evict("ghost", 9.0)
        assert t.residence_times == []

    def test_flush_evicts_everything(self):
        t = LifetimeTracker()
        t.on_insert("a", 0.0)
        t.on_insert("b", 10.0)
        t.flush(100.0)
        assert sorted(t.residence_times) == [90.0, 100.0]

    def test_reinsertion_restarts_span(self):
        t = LifetimeTracker()
        t.on_insert("k", 0.0)
        t.on_evict("k", 10.0)
        t.on_insert("k", 50.0)
        t.on_evict("k", 55.0)
        assert t.residence_times == [10.0, 5.0]


class TestCdfHelpers:
    def test_cdf_points(self):
        points = cdf([3.0, 1.0, 2.0, 2.0])
        assert points[0] == (1.0, 0.25)
        assert points[-1] == (3.0, 1.0)

    def test_cdf_empty(self):
        assert cdf([]) == []

    def test_fraction_at_or_below(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert fraction_at_or_below(values, 2.5) == 0.5
        assert fraction_at_or_below(values, 0.0) == 0.0
        assert fraction_at_or_below(values, 10.0) == 1.0
        assert fraction_at_or_below([], 1.0) == 0.0
