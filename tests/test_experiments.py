"""Integration tests for the experiment drivers (tiny scale).

These run the actual figure-regeneration code paths on scaled-down
workloads so the full pipeline (workload → designs → metrics → render)
is exercised quickly.  Calibration-level assertions live in
``benchmarks/``; here we check mechanics and invariants.
"""

import pytest

from repro.experiments import (
    energy,
    fig2,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    tables,
)
from repro.experiments.common import ResultCache, resolve_workloads

TINY = 0.1
FAST_WORKLOADS = ["pagerank", "kmeans"]
FAST_HIGH_BW = ["pagerank", "mis"]


@pytest.fixture(scope="module")
def cache():
    return ResultCache(scale=TINY)


class TestResultCache:
    def test_memoizes_runs(self, cache):
        from repro.system.designs import IDEAL_MMU
        a = cache.run("kmeans", IDEAL_MMU)
        b = cache.run("kmeans", IDEAL_MMU)
        assert a is b

    def test_distinct_designs_run_separately(self, cache):
        from repro.system.designs import BASELINE_512, IDEAL_MMU
        a = cache.run("kmeans", IDEAL_MMU)
        b = cache.run("kmeans", BASELINE_512)
        assert a is not b

    def test_resolve_workloads_validates(self):
        with pytest.raises(KeyError):
            resolve_workloads(["bogus"], ["pagerank"])
        assert resolve_workloads(None, ["pagerank"]) == ["pagerank"]


class TestFig2(object):
    def test_run_and_render(self, cache):
        result = fig2.run(cache, workloads=FAST_WORKLOADS)
        text = result.render()
        assert "Figure 2" in text
        for w in FAST_WORKLOADS:
            for size in ("32", "64", "128", "inf"):
                assert 0.0 <= result.miss_ratio[w][size] <= 1.0
        assert 0.0 <= result.filterable_fraction(32) <= 1.0

    def test_monotone_in_tlb_size(self, cache):
        result = fig2.run(cache, workloads=FAST_WORKLOADS)
        for w in FAST_WORKLOADS:
            assert result.miss_ratio[w]["32"] >= result.miss_ratio[w]["inf"] - 1e-9


class TestFig3(object):
    def test_run_and_render(self, cache):
        result = fig3.run(cache, workloads=FAST_WORKLOADS)
        assert "Figure 3" in result.render()
        assert set(result.rates) == set(FAST_WORKLOADS)
        order = result.sorted_workloads()
        assert result.rates[order[0]].mean >= result.rates[order[-1]].mean


class TestFig4(object):
    def test_ideal_is_unity(self, cache):
        result = fig4.run(cache, workloads=FAST_WORKLOADS)
        assert result.average("IDEAL MMU") == 1.0
        assert result.average("Baseline 512") >= 1.0
        assert "Figure 4" in result.render()


class TestFig5(object):
    def test_bandwidth_sweep(self, cache):
        result = fig5.run(cache, workloads=FAST_HIGH_BW)
        for bw in (1.0, 2.0, 3.0, 4.0):
            assert result.average(bw) >= 0.99
        # More bandwidth never makes it meaningfully slower.
        assert result.average(4.0) <= result.average(1.0) + 0.02
        assert "Figure 5" in result.render()


class TestFig8(object):
    def test_filtering(self, cache):
        result = fig8.run(cache, workloads=FAST_HIGH_BW)
        for w in FAST_HIGH_BW:
            assert result.virtual_cache[w].mean >= 0.0
            assert result.reduction(w) <= 1.0
            # At tiny scale footprints shrink toward TLB reach, so the
            # baseline's demand collapses; only insist on filtering
            # where there is real traffic to filter.
            if result.baseline[w].mean > 0.3:
                assert result.reduction(w) > 0.0, w
        assert "Figure 8" in result.render()


class TestFig9(object):
    def test_shape(self, cache):
        result = fig9.run(cache, workloads=FAST_HIGH_BW + ["kmeans"])
        assert result.high_bandwidth == FAST_HIGH_BW
        for w in result.all_workloads:
            for design, perf in result.performance[w].items():
                assert perf > 0.0
        assert 0.0 <= result.average_fbt_hit_fraction() <= 1.0
        assert "Figure 9" in result.render()


class TestFig10And11(object):
    def test_fig10(self, cache):
        result = fig10.run(cache, workloads=FAST_HIGH_BW)
        assert set(result.speedup) == set(FAST_HIGH_BW)
        assert result.average() > 0.0
        assert "Figure 10" in result.render()

    def test_fig11(self, cache):
        result = fig11.run(cache, workloads=FAST_HIGH_BW)
        for design in ("L1-Only VC (32)", "L1-Only VC (128)", "VC With OPT"):
            assert result.average(design) > 0.0
        assert "Figure 11" in result.render()


class TestFig12(object):
    def test_lifetimes(self, cache):
        result = fig12.run(cache, workload="pagerank")
        assert result.tlb_residence_ns
        assert result.l1_active_ns
        assert result.l2_active_ns
        assert 0.0 <= result.cdf_at("tlb", 5000.0) <= 1.0
        assert "Figure 12" in result.render()


class TestEnergy(object):
    def test_proxies(self, cache):
        result = energy.run(cache, workloads=FAST_WORKLOADS)
        assert result.tlb_lookup_reduction() == 1.0
        assert "energy" in result.render().lower()


class TestTables(object):
    def test_table1(self):
        text = tables.render_table1()
        assert "16 CUs" in text
        assert "512-entry" in text
        assert "8KB page-walk cache" in text

    def test_table2(self):
        text = tables.render_table2()
        assert "IDEAL MMU" in text
        assert "Infinite" in text
        assert "1 Access/Cycle" in text


class TestCli(object):
    def test_cli_runs_tables(self, capsys):
        from repro.experiments.cli import main
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_cli_rejects_unknown(self, capsys):
        from repro.experiments.cli import main
        assert main(["fig99"]) != 0
        err = capsys.readouterr().err
        assert "fig99" in err
        assert "fig2" in err  # the valid list is printed
