"""Tests for the forward-backward table and its component tables."""

import pytest

from repro.core.backward_table import BackwardTable, BTEntry
from repro.core.fbt import ForwardBackwardTable
from repro.core.forward_table import ForwardTable
from repro.memsys.permissions import Permissions, ReadWriteSynonymFault

RW = Permissions.READ_WRITE


class TestBTEntry:
    def test_bit_vector_tracking(self):
        e = BTEntry(ppn=1, leading_asid=0, leading_vpn=10, permissions=RW)
        e.mark_line_cached(3)
        e.mark_line_cached(3)  # idempotent
        e.mark_line_cached(31)
        assert e.line_cached(3) and e.line_cached(31)
        assert not e.line_cached(4)
        assert e.line_count == 2
        assert e.cached_line_indices() == [3, 31]

    def test_bit_vector_eviction(self):
        e = BTEntry(ppn=1, leading_asid=0, leading_vpn=10, permissions=RW)
        e.mark_line_cached(5)
        e.mark_line_evicted(5)
        e.mark_line_evicted(5)  # idempotent
        assert not e.line_cached(5)
        assert e.line_count == 0

    def test_counter_mode_for_large_pages(self):
        e = BTEntry(ppn=1, leading_asid=0, leading_vpn=10, permissions=RW,
                    tracking="counter")
        e.mark_line_cached(100)
        e.mark_line_cached(200)
        # Counter mode has no per-line info: conservatively resident.
        assert e.line_cached(0)
        e.mark_line_evicted(100)
        e.mark_line_evicted(200)
        assert not e.line_cached(0)

    def test_counter_mode_has_no_line_indices(self):
        e = BTEntry(ppn=1, leading_asid=0, leading_vpn=10, permissions=RW,
                    tracking="counter")
        with pytest.raises(ValueError):
            e.cached_line_indices()


class TestBackwardTable:
    def test_allocate_and_lookup(self):
        bt = BackwardTable(n_entries=16, associativity=4)
        entry, victim = bt.allocate(5, 0, 100, RW)
        assert victim is None
        assert bt.lookup(5) is entry
        assert bt.lookup(6) is None

    def test_set_conflict_evicts_lru(self):
        bt = BackwardTable(n_entries=8, associativity=2)  # 4 sets
        # Three PPNs in the same set (stride = n_sets = 4).
        bt.allocate(0, 0, 100, RW)
        bt.allocate(4, 0, 104, RW)
        _, victim = bt.allocate(8, 0, 108, RW)
        assert victim.ppn == 0
        assert bt.evictions == 1

    def test_lookup_refreshes_lru(self):
        bt = BackwardTable(n_entries=8, associativity=2)
        bt.allocate(0, 0, 100, RW)
        bt.allocate(4, 0, 104, RW)
        bt.lookup(0)
        _, victim = bt.allocate(8, 0, 108, RW)
        assert victim.ppn == 4

    def test_locked_entries_not_evicted(self):
        bt = BackwardTable(n_entries=8, associativity=2)
        a, _ = bt.allocate(0, 0, 100, RW)
        bt.allocate(4, 0, 104, RW)
        a.locked = True
        _, victim = bt.allocate(8, 0, 108, RW)
        assert victim.ppn == 4  # skipped the locked entry

    def test_double_allocate_rejected(self):
        bt = BackwardTable(n_entries=16, associativity=4)
        bt.allocate(5, 0, 100, RW)
        with pytest.raises(ValueError):
            bt.allocate(5, 0, 101, RW)

    def test_remove(self):
        bt = BackwardTable(n_entries=16, associativity=4)
        bt.allocate(5, 0, 100, RW)
        assert bt.remove(5) is not None
        assert bt.remove(5) is None
        assert len(bt) == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BackwardTable(n_entries=10, associativity=4)
        with pytest.raises(ValueError):
            BackwardTable(n_entries=0)

    def test_table1_sizing(self):
        bt = BackwardTable(n_entries=16384, associativity=8)
        assert bt.n_sets == 2048


class TestForwardTable:
    def test_pairing_lifecycle(self):
        ft = ForwardTable()
        e = BTEntry(ppn=9, leading_asid=0, leading_vpn=70, permissions=RW)
        ft.insert(e)
        assert ft.lookup(0, 70) is e
        ft.remove_entry(e)
        assert ft.lookup(0, 70) is None

    def test_duplicate_leading_rejected(self):
        ft = ForwardTable()
        e1 = BTEntry(ppn=1, leading_asid=0, leading_vpn=70, permissions=RW)
        e2 = BTEntry(ppn=2, leading_asid=0, leading_vpn=70, permissions=RW)
        ft.insert(e1)
        with pytest.raises(ValueError):
            ft.insert(e2)

    def test_miss_filters(self):
        ft = ForwardTable()
        assert ft.lookup(0, 123) is None
        assert ft.lookups == 1 and ft.hits == 0


class TestFBTAccessCheck:
    def make(self, **kw):
        return ForwardBackwardTable(n_entries=64, associativity=4, **kw)

    def test_first_access_becomes_leading(self):
        fbt = self.make()
        check = fbt.check_access(0, vpn=100, ppn=5, permissions=RW,
                                 line_index=0, is_write=False)
        assert check.status == "new_leading"
        assert check.leading_vpn == 100
        assert fbt.ft.lookup(0, 100) is check.entry

    def test_leading_access_recognized(self):
        fbt = self.make()
        fbt.check_access(0, 100, 5, RW, 0, False)
        check = fbt.check_access(0, 100, 5, RW, 1, False)
        assert check.status == "leading"

    def test_synonym_detected(self):
        fbt = self.make()
        fbt.check_access(0, 100, 5, RW, 0, False)
        check = fbt.check_access(0, 200, 5, RW, 0, False)
        assert check.status == "synonym"
        assert check.leading_vpn == 100
        assert fbt.counters["fbt.synonym_accesses"] == 1

    def test_synonym_replay_hits_when_line_cached(self):
        fbt = self.make()
        fbt.check_access(0, 100, 5, RW, 3, False)
        fbt.note_l2_fill(5, 3)
        check = fbt.check_access(0, 200, 5, RW, 3, False)
        assert check.replay_hits_l2 is True
        miss = fbt.check_access(0, 200, 5, RW, 4, False)
        assert miss.replay_hits_l2 is False

    def test_read_write_synonym_faults_on_write(self):
        fbt = self.make()
        fbt.check_access(0, 100, 5, RW, 0, False)
        with pytest.raises(ReadWriteSynonymFault):
            fbt.check_access(0, 200, 5, RW, 0, True)
        assert fbt.counters["fbt.rw_synonym_faults"] == 1

    def test_read_write_synonym_faults_on_read_after_write(self):
        fbt = self.make()
        fbt.check_access(0, 100, 5, RW, 0, True)  # leading page written
        with pytest.raises(ReadWriteSynonymFault):
            fbt.check_access(0, 200, 5, RW, 0, False)

    def test_read_only_synonyms_allowed(self):
        fbt = self.make()
        fbt.check_access(0, 100, 5, RW, 0, False)
        check = fbt.check_access(0, 200, 5, RW, 0, False)
        assert check.status == "synonym"  # no fault

    def test_fault_disabled_replays_instead(self):
        fbt = self.make(fault_on_rw_synonym=False)
        fbt.check_access(0, 100, 5, RW, 0, True)
        check = fbt.check_access(0, 200, 5, RW, 0, False)
        assert check.status == "synonym"

    def test_cross_asid_synonym(self):
        fbt = self.make()
        fbt.check_access(0, 100, 5, RW, 0, False)
        check = fbt.check_access(1, 100, 5, RW, 0, False)
        assert check.status == "synonym"
        assert check.leading_asid == 0

    def test_victim_eviction_order(self):
        fbt = ForwardBackwardTable(n_entries=4, associativity=1)  # 4 sets
        fbt.check_access(0, 100, 0, RW, 0, False)
        fbt.note_l2_fill(0, 7)
        check = fbt.check_access(0, 200, 4, RW, 0, False)  # same BT set
        assert len(check.invalidations) == 1
        order = check.invalidations[0]
        assert order.leading_vpn == 100
        assert order.line_indices == [7]
        assert order.reason == "bt_eviction"
        assert fbt.ft.lookup(0, 100) is None  # FT pairing dropped

    def test_stale_remap_implicitly_shot_down(self):
        # A virtual page remapped to a new physical page (its shootdown
        # unseen) must evict the stale leading entry before reuse.
        fbt = self.make()
        fbt.check_access(0, 100, 5, RW, 2, False)
        fbt.note_l2_fill(5, 2)
        check = fbt.check_access(0, 100, 9, RW, 0, False)  # vpn 100 remapped
        assert check.status == "new_leading"
        stale = [o for o in check.invalidations if o.reason == "stale_remap"]
        assert len(stale) == 1
        assert stale[0].leading_vpn == 100
        assert stale[0].line_indices == [2]
        assert fbt.bt.peek(5) is None
        assert fbt.ft.lookup(0, 100).ppn == 9
        assert fbt.counters["fbt.stale_remaps"] == 1


class TestFBTSecondLevelTLB:
    def test_forward_translate_hit(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        fbt.check_access(0, 100, 5, Permissions.READ_ONLY, 0, False)
        assert fbt.forward_translate(0, 100) == (5, Permissions.READ_ONLY)

    def test_forward_translate_miss(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        assert fbt.forward_translate(0, 100) is None

    def test_non_leading_page_misses(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        fbt.check_access(0, 100, 5, RW, 0, False)
        fbt.check_access(0, 200, 5, RW, 0, False)  # synonym of 100
        assert fbt.forward_translate(0, 200) is None


class TestFBTInclusion:
    def test_fill_without_entry_is_an_error(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        with pytest.raises(RuntimeError):
            fbt.note_l2_fill(99, 0)

    def test_eviction_clears_bit_via_ft(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        check = fbt.check_access(0, 100, 5, RW, 2, False)
        fbt.note_l2_fill(5, 2)
        fbt.note_l2_eviction(0, 100, 2)
        assert not check.entry.line_cached(2)

    def test_eviction_after_entry_death_is_noop(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        fbt.check_access(0, 100, 5, RW, 0, False)
        fbt.shootdown(0, 100)
        fbt.note_l2_eviction(0, 100, 0)  # must not raise

    def test_note_write_sets_written(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        check = fbt.check_access(0, 100, 5, RW, 0, False)
        assert not check.entry.written
        fbt.note_write(0, 100)
        assert check.entry.written


class TestFBTShootdown:
    def test_shootdown_filtered_when_nothing_cached(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        assert fbt.shootdown(0, 12345) is None
        assert fbt.counters["fbt.shootdowns_filtered"] == 1

    def test_shootdown_produces_selective_invalidation(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        fbt.check_access(0, 100, 5, RW, 0, False)
        fbt.note_l2_fill(5, 1)
        fbt.note_l2_fill(5, 9)
        order = fbt.shootdown(0, 100)
        assert order.line_indices == [1, 9]
        assert order.reason == "shootdown"
        assert fbt.bt.peek(5) is None

    def test_shootdown_all(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        fbt.check_access(0, 100, 5, RW, 0, False)
        fbt.check_access(0, 101, 6, RW, 0, False)
        orders = fbt.shootdown_all()
        assert len(orders) == 2
        assert len(fbt.bt) == 0
        assert len(fbt.ft) == 0


class TestFBTCoherence:
    def test_probe_filtered_for_uncached_page(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        assert fbt.reverse_translate_probe(99 * 32 + 3) is None
        assert fbt.counters["fbt.probes_filtered"] == 1

    def test_probe_reverse_translates_to_leading(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        fbt.check_access(0, 100, 5, RW, 3, False)
        fbt.note_l2_fill(5, 3)
        asid, vline, line_index, in_l2 = fbt.reverse_translate_probe(5 * 32 + 3)
        assert (asid, line_index, in_l2) == (0, 3, True)
        assert vline == 100 * 32 + 3

    def test_probe_to_uncached_line_of_cached_page(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        fbt.check_access(0, 100, 5, RW, 3, False)
        _, _, _, in_l2 = fbt.reverse_translate_probe(5 * 32 + 9)
        assert in_l2 is False

    def test_response_forward_translation(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        fbt.check_access(0, 100, 5, RW, 3, False)
        assert fbt.forward_response_translate(0, 100 * 32 + 3) == 5 * 32 + 3
        assert fbt.forward_response_translate(0, 999 * 32) is None
