"""Tests for the consistent-hash sharding gateway.

Covers the acceptance criteria of the sharding PR: ring stability
(adding/removing a member moves ~1/N of the keyspace, and every moved
key lands on the changed member's successor), a replica killed
mid-stream costing **zero** client-visible failures, the shared disk
tier letting replica B serve what replica A computed, eviction +
re-admission through the health loop, and the merged ``/metrics``
exposition carrying per-replica labels that validate.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.obs.promexp import validate_exposition
from repro.service import ServiceClient, ServiceError
from repro.service.gateway import (
    DEFAULT_VNODES,
    HashRing,
    Replica,
    ShardGateway,
    launch_local_gateway,
    replicas_from_urls,
    spawn_thread_replicas,
)

SCALE = 0.05

HOT = [{"workload": "bfs", "design": "baseline-512"},
       {"workload": "kmeans", "design": "vc-with-opt"},
       {"workload": "pagerank", "design": "ideal-mmu"},
       {"workload": "hotspot", "design": "baseline-512"}]


@pytest.fixture
def gateway(tmp_path):
    """A 3-replica thread-mode gateway over one shared disk cache."""
    gw = launch_local_gateway(
        3, mode="thread", cache_dir=str(tmp_path / "cache"), scale=SCALE,
        batch_window=0.002, health_interval=0.1)
    try:
        yield gw
    finally:
        gw.shutdown()


# -- hash ring ------------------------------------------------------------

def _owners(ring, keys):
    return {key: ring.lookup(key) for key in keys}


def test_ring_moves_about_one_nth_on_membership_change():
    keys = [f"fingerprint-{i}" for i in range(2000)]
    three = HashRing(["r0", "r1", "r2"])
    four = HashRing(["r0", "r1", "r2", "r3"])
    before, after = _owners(three, keys), _owners(four, keys)
    moved = [k for k in keys if before[k] != after[k]]
    # Adding a fourth member should claim ~1/4 of the keyspace ...
    assert 0.10 <= len(moved) / len(keys) <= 0.45
    # ... and every moved key moves TO the new member, never between
    # survivors — the property hedging relies on.
    assert all(after[k] == "r3" for k in moved)

    # Removal is symmetric: only the removed member's keys move.
    two = HashRing(["r0", "r2"])
    shrunk = _owners(two, keys)
    for key in keys:
        if before[key] != "r1":
            assert shrunk[key] == before[key]


def test_ring_balance_and_determinism():
    keys = [f"key-{i}" for i in range(3000)]
    ring = HashRing(["r0", "r1", "r2"], vnodes=DEFAULT_VNODES)
    counts = {member: 0 for member in ring.members}
    for key in keys:
        counts[ring.lookup(key)] += 1
    for member, count in counts.items():
        share = count / len(keys)
        assert 0.15 <= share <= 0.55, f"{member} owns {share:.0%}"
    # Same membership -> same ring, independent of construction order.
    again = HashRing(["r2", "r0", "r1"], vnodes=DEFAULT_VNODES)
    assert all(ring.lookup(k) == again.lookup(k) for k in keys[:200])


def test_ring_rejects_empty_lookup_and_bad_vnodes():
    with pytest.raises(LookupError):
        HashRing([]).lookup("anything")
    with pytest.raises(ValueError):
        HashRing(["r0"], vnodes=0)


# -- construction ---------------------------------------------------------

def test_gateway_rejects_no_replicas_and_duplicate_ids():
    with pytest.raises(ValueError, match="at least one replica"):
        ShardGateway([])
    dupes = [Replica("r0", "127.0.0.1", 1), Replica("r0", "127.0.0.1", 2)]
    with pytest.raises(ValueError, match="duplicate replica ids"):
        ShardGateway(dupes)


def test_replicas_from_urls_parses_and_rejects():
    replicas = replicas_from_urls(
        ["127.0.0.1:8001", "http://[::1]:8002/"])
    assert [(r.host, r.port) for r in replicas] == \
        [("127.0.0.1", 8001), ("::1", 8002)]
    assert not replicas[0].managed
    with pytest.raises(ValueError, match="missing ':PORT'"):
        replicas_from_urls(["localhost"])


# -- end-to-end through the gateway ---------------------------------------

def test_gateway_serves_points_with_tier_provenance(gateway):
    with ServiceClient(gateway.host, gateway.port) as client:
        first = client.simulate(HOT)
        assert [p.tier for p in first.points] == ["computed"] * len(HOT)
        second = client.simulate(HOT)
        assert [p.tier for p in second.points] == ["memo"] * len(HOT)
        # The reply is stitched into the caller's trace.
        assert second.trace_id == client.last_trace_id
        health = client.healthz()
        assert health.status == "ok"
        assert health.pool == {"replicas_healthy": 3, "replicas_total": 3}
        assert health.raw["ring"]["members"] == ["r0", "r1", "r2"]


def test_gateway_propagates_request_errors(gateway):
    with ServiceClient(gateway.host, gateway.port) as client:
        with pytest.raises(ServiceError) as err:
            client.simulate([{"workload": "no-such-workload",
                              "design": "baseline-512"}])
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.poll("not-a-job")
        assert err.value.status == 404


def test_gateway_jobs_roundtrip(gateway):
    with ServiceClient(gateway.host, gateway.port) as client:
        job_id = client.submit(HOT[:2])
        reply = client.wait(job_id)
        assert [p.tier for p in reply.points] == ["computed", "computed"]


def test_kill_one_replica_mid_stream_zero_client_failures(gateway):
    """The headline guarantee: an evicted replica is invisible to clients."""
    with ServiceClient(gateway.host, gateway.port) as client:
        client.simulate(HOT)  # warm every owner
        victim = gateway.replicas[0]
        victim.service.shutdown()  # killed out from under the gateway
        failures = 0
        for _ in range(12):
            reply = client.simulate(HOT)
            failures += sum(1 for p in reply.points if p.cycles <= 0)
        assert failures == 0
        assert not victim.healthy
        assert tuple(gateway.ring.members) == ("r1", "r2")
        assert victim.evictions == 1


def test_shared_disk_tier_survives_owner_eviction(gateway):
    """A point replica A computed is served from disk by its new owner."""
    with ServiceClient(gateway.host, gateway.port) as client:
        point = {"workload": "nw", "design": "baseline-512"}
        body = json.dumps({"points": [point]}).encode("utf-8")
        plan = gateway._plan(body)
        owner_id = gateway.ring.lookup(plan.fingerprints[0])

        first = client.simulate([point])
        assert first.points[0].tier == "computed"

        owner = next(r for r in gateway.replicas if r.id == owner_id)
        owner.service.shutdown()
        reply = client.simulate([point])
        # The new owner has never seen the point in memory; the shared
        # disk cache is what answers.
        assert reply.points[0].tier == "disk"
        assert reply.points[0].fingerprint == plan.fingerprints[0]


def test_health_loop_readmits_a_recovered_replica(gateway):
    replica = gateway.replicas[1]
    # Force an eviction the health loop will disagree with: the
    # replica's service is alive, so the next probe re-admits it.
    gateway._loop.call_soon_threadsafe(
        gateway._evict, replica, "synthetic eviction")
    deadline = time.monotonic() + 5.0
    while replica.healthy and time.monotonic() < deadline:
        time.sleep(0.02)
    assert not replica.healthy or time.monotonic() < deadline
    while not replica.healthy and time.monotonic() < deadline:
        time.sleep(0.02)
    assert replica.healthy, "health loop never re-admitted the replica"
    assert tuple(gateway.ring.members) == ("r0", "r1", "r2")


def test_gateway_metrics_merge_with_replica_labels(gateway):
    with ServiceClient(gateway.host, gateway.port) as client:
        client.simulate(HOT)
        text = client.metrics_text()
    families = validate_exposition(text)
    # The gateway's own per-replica counters are bracket-labelled ...
    forwarded = families["repro_gateway_forwarded_total"]
    replicas_seen = {value for key, value in forwarded["labels"]
                     if key == "replica"}
    assert replicas_seen  # at least one owner got traffic
    assert replicas_seen <= {"r0", "r1", "r2"}
    # ... and replica-side families are re-exported under replica="...".
    requests = families["repro_service_requests_total"]
    assert {value for key, value in requests["labels"]
            if key == "replica"} == {"r0", "r1", "r2"}
    # Replica-side latency histograms keep their type through the merge.
    assert families["repro_service_request_seconds"]["type"] == "histogram"


def test_gateway_json_metrics_nest_replica_snapshots(gateway):
    with ServiceClient(gateway.host, gateway.port) as client:
        client.simulate(HOT[:1])
        snapshot = client.metrics()
    assert set(snapshot["replicas"]) == {"r0", "r1", "r2"}
    assert "counters" in snapshot["gateway"]
    for replica_snapshot in snapshot["replicas"].values():
        assert replica_snapshot is not None


def test_trace_context_flows_through_gateway_to_replica(gateway):
    from repro.obs.trace_context import TraceContext

    ctx = TraceContext.new()
    with ServiceClient(gateway.host, gateway.port, trace_ctx=ctx) as client:
        reply = client.simulate(HOT[:1])
    assert reply.trace_id == ctx.trace_id


def test_gateway_drain_rejects_new_work_then_finishes(tmp_path):
    gw = launch_local_gateway(
        2, mode="thread", cache_dir=str(tmp_path / "cache"), scale=SCALE,
        batch_window=0.002, health_interval=0.1)
    try:
        with ServiceClient(gw.host, gw.port) as client:
            client.simulate(HOT[:1])
            client.drain()
            with pytest.raises((ServiceError, OSError)):
                client.simulate(HOT[:1])
    finally:
        gw.shutdown()
    # Managed replicas were drained with the gateway.
    for replica in gw.replicas:
        assert replica.service._drained_event.is_set()


def test_spawn_thread_replicas_share_one_disk_cache(tmp_path):
    replicas = spawn_thread_replicas(
        2, str(tmp_path / "cache"), scale=SCALE, batch_window=0.002)
    try:
        with ServiceClient(replicas[0].host, replicas[0].port) as a:
            assert a.simulate(HOT[:1]).points[0].tier == "computed"
        with ServiceClient(replicas[1].host, replicas[1].port) as b:
            assert b.simulate(HOT[:1]).points[0].tier == "disk"
    finally:
        for replica in replicas:
            replica.service.shutdown()
