"""Tests for the GPU substrate: coalescer, compute unit, scratchpad."""

import pytest

from repro.gpu.coalescer import Coalescer
from repro.gpu.cu import ComputeUnit
from repro.gpu.scratchpad import Scratchpad


class TestCoalescer:
    def test_fully_coalesced_warp(self):
        c = Coalescer(line_size=128)
        # 32 consecutive 4-byte accesses: one line.
        reqs = c.coalesce([i * 4 for i in range(32)])
        assert len(reqs) == 1
        assert reqs[0].n_lanes == 32
        assert reqs[0].line_addr == 0

    def test_fully_divergent_warp(self):
        c = Coalescer(line_size=128)
        reqs = c.coalesce([i * 4096 for i in range(32)])
        assert len(reqs) == 32
        assert all(r.n_lanes == 1 for r in reqs)

    def test_partial_coalescing(self):
        c = Coalescer(line_size=128)
        reqs = c.coalesce([0, 64, 128, 192, 1000])
        assert len(reqs) == 3
        assert [r.line_addr for r in reqs] == [0, 1, 7]

    def test_lane_counts_preserved(self):
        c = Coalescer(line_size=128)
        reqs = c.coalesce([0, 0, 0, 128])
        assert sum(r.n_lanes for r in reqs) == 4

    def test_write_flag_propagates(self):
        c = Coalescer()
        reqs = c.coalesce([0], is_write=True)
        assert reqs[0].is_write

    def test_request_addressing_helpers(self):
        c = Coalescer(line_size=128)
        req = c.coalesce([5000])[0]
        assert req.byte_addr == (5000 // 128) * 128
        assert req.vpn == 5000 // 4096

    def test_divergence_statistics(self):
        c = Coalescer(line_size=128)
        c.coalesce([0])
        c.coalesce([0, 4096, 8192])
        assert c.mean_divergence() == 2.0

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            Coalescer(line_size=0)


class TestComputeUnit:
    def test_issue_advances_by_gap(self):
        cu = ComputeUnit(0, window=4, issue_interval=10.0)
        cu.issue(0.0, 100.0, gap=1.0)
        assert cu.next_issue_time == 1.0
        cu.issue(1.0, 101.0, gap=10.0)
        assert cu.next_issue_time == 11.0

    def test_window_stalls_issue(self):
        cu = ComputeUnit(0, window=2, issue_interval=1.0)
        cu.issue(0.0, 100.0)
        cu.issue(1.0, 200.0)
        # Window full: next issue waits for the oldest completion.
        assert cu.earliest_issue(2.0) == 100.0
        assert cu.stall_cycles == 98.0

    def test_completed_requests_retire(self):
        cu = ComputeUnit(0, window=2, issue_interval=1.0)
        cu.issue(0.0, 5.0)
        cu.issue(1.0, 6.0)
        # Both complete before cycle 10; no stall.
        cu.issue(10.0, 20.0)
        assert cu.in_flight() == 1

    def test_drain_time(self):
        cu = ComputeUnit(0, window=4, issue_interval=1.0)
        cu.issue(0.0, 50.0)
        cu.issue(1.0, 30.0)
        assert cu.drain_time() == 50.0

    def test_drain_time_after_retirement(self):
        cu = ComputeUnit(0, window=2, issue_interval=1.0)
        cu.issue(0.0, 5.0)
        cu.issue(100.0, 110.0)  # first retired at issue
        assert cu.drain_time() == 110.0

    def test_completion_before_issue_rejected(self):
        cu = ComputeUnit(0)
        with pytest.raises(ValueError):
            cu.issue(10.0, 5.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ComputeUnit(0, window=0)
        with pytest.raises(ValueError):
            ComputeUnit(0, issue_interval=0.0)


class TestScratchpad:
    def test_fixed_latency(self):
        sp = Scratchpad(latency=2.0)
        assert sp.access(10.0) == 12.0
        assert sp.accesses == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Scratchpad(size_bytes=0)
        with pytest.raises(ValueError):
            Scratchpad(latency=-1.0)
