"""Tests for the graph substrate."""

import numpy as np
import pytest

from repro.workloads.graphs import (
    CSRGraph,
    edge_positions,
    grid_graph,
    powerlaw_graph,
    segment_max,
    segment_min,
    uniform_random_graph,
    zipf_graph,
)


class TestCSRGraph:
    def test_valid_construction(self):
        g = CSRGraph(3, np.array([0, 2, 2, 3]), np.array([1, 2, 0], dtype=np.int32))
        assert g.n_edges == 3
        assert g.degree(0) == 2
        assert g.degree(1) == 0
        assert list(g.neighbors(0)) == [1, 2]

    def test_bad_row_ptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(2, np.array([0, 1]), np.array([0], dtype=np.int32))
        with pytest.raises(ValueError):
            CSRGraph(2, np.array([0, 2, 1]), np.array([0], dtype=np.int32))
        with pytest.raises(ValueError):
            CSRGraph(2, np.array([1, 1, 1]), np.array([0], dtype=np.int32))


class TestGenerators:
    def test_powerlaw_graph_is_valid(self):
        g = powerlaw_graph(2000, mean_degree=4, seed=1)
        assert g.n_vertices == 2000
        assert np.all(g.col_idx >= 0) and np.all(g.col_idx < 2000)
        assert g.row_ptr[-1] == g.n_edges

    def test_powerlaw_has_hubs(self):
        g = powerlaw_graph(5000, mean_degree=4, seed=2)
        degrees = np.sort(g.out_degrees())[::-1]
        # Heavy tail: the top vertex far exceeds the mean.
        assert degrees[0] > 10 * degrees.mean()

    def test_zipf_graph_target_skew(self):
        g = zipf_graph(10_000, mean_degree=8, exponent=1.2, seed=3)
        counts = np.bincount(g.col_idx, minlength=g.n_vertices)
        top = np.sort(counts)[::-1]
        # The hottest 1% of vertices receive a large share of edges.
        assert top[:100].sum() > 0.2 * g.n_edges

    def test_zipf_graph_hubs_are_scattered(self):
        g = zipf_graph(10_000, mean_degree=8, exponent=1.2, seed=4)
        counts = np.bincount(g.col_idx, minlength=g.n_vertices)
        hot = np.argsort(counts)[-50:]
        # Hubs are spread over the ID space, not clustered at low IDs.
        assert hot.std() > g.n_vertices / 8

    def test_zipf_symmetric_doubles_edges(self):
        g1 = zipf_graph(1000, mean_degree=4, seed=5)
        g2 = zipf_graph(1000, mean_degree=4, seed=5, symmetric=True)
        assert g2.n_edges == 2 * g1.n_edges

    def test_zipf_deterministic(self):
        a = zipf_graph(1000, seed=6)
        b = zipf_graph(1000, seed=6)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_uniform_random_graph(self):
        g = uniform_random_graph(1000, mean_degree=6, seed=7)
        assert g.n_vertices == 1000
        counts = np.bincount(g.col_idx, minlength=1000)
        assert counts.max() < 20 * max(1.0, counts.mean())  # no hubs

    def test_grid_graph_degrees(self):
        g = grid_graph(4)
        degrees = g.out_degrees()
        assert degrees.max() == 4   # interior
        assert degrees.min() == 2   # corners
        assert g.n_edges == 2 * 2 * 4 * 3  # 24 undirected edges, both ways

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            zipf_graph(1)
        with pytest.raises(ValueError):
            zipf_graph(100, exponent=0.0)
        with pytest.raises(ValueError):
            powerlaw_graph(100, mean_degree=0)
        with pytest.raises(ValueError):
            grid_graph(1)


class TestVectorizedHelpers:
    def g(self):
        return CSRGraph(
            4,
            np.array([0, 2, 2, 5, 6]),
            np.array([1, 2, 0, 1, 3, 0], dtype=np.int32),
        )

    def test_edge_positions_matches_reference(self):
        g = self.g()
        got = edge_positions(g, np.array([0, 2]))
        assert list(got) == [0, 1, 2, 3, 4]

    def test_edge_positions_empty_vertex(self):
        g = self.g()
        assert list(edge_positions(g, np.array([1]))) == []
        assert list(edge_positions(g, np.array([]))) == []

    def test_edge_positions_random_graph_reference(self):
        g = zipf_graph(500, mean_degree=5, seed=8)
        verts = np.array([3, 100, 499, 0])
        expected = []
        for v in verts:
            expected.extend(range(int(g.row_ptr[v]), int(g.row_ptr[v + 1])))
        assert list(edge_positions(g, verts)) == expected

    def test_segment_max_matches_reference(self):
        g = zipf_graph(300, mean_degree=4, seed=9)
        values = np.random.default_rng(0).random(300)
        got = segment_max(g, values)
        for v in range(300):
            neigh = g.neighbors(v)
            expected = values[neigh].max() if len(neigh) else -np.inf
            assert got[v] == pytest.approx(expected)

    def test_segment_min_matches_reference(self):
        g = zipf_graph(300, mean_degree=4, seed=10)
        values = np.random.default_rng(1).random(300)
        got = segment_min(g, values)
        for v in range(300):
            neigh = g.neighbors(v)
            expected = values[neigh].min() if len(neigh) else np.inf
            assert got[v] == pytest.approx(expected)
