"""Golden hot-path equivalence test.

Pins the exact simulation outputs — ``cycles``, ``instructions``,
``requests``, and *every* counter — of one small workload run through
all three hierarchy kinds (physical baseline, full virtual cache,
L1-only virtual cache) plus the IDEAL MMU, against a frozen snapshot
committed in ``tests/golden_hotpath.json``.

The snapshot was recorded *before* the PR 3 hot-path optimizations
(``__slots__`` record types, flattened cache indexing, deferred counter
flushing, trace-level coalescing cache), so this test proves those
optimizations are bit-identical: any drift in timing or accounting — a
reordered float addition, a dropped counter, a changed LRU decision —
fails loudly here.

Regenerate (only when an *intentional* model change shifts results)::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_hotpath_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.system.config import SoCConfig
from repro.system.designs import (
    BASELINE_512,
    IDEAL_MMU,
    L1_ONLY_VC_32,
    VC_WITH_OPT,
)
from repro.system.run import simulate
from repro.workloads import registry

GOLDEN_PATH = Path(__file__).parent / "golden_hotpath.json"

WORKLOAD = "bfs"
SCALE = 0.05
DESIGNS = (IDEAL_MMU, BASELINE_512, VC_WITH_OPT, L1_ONLY_VC_32)


def _run_design(design):
    trace = registry.load(WORKLOAD, scale=SCALE)
    config = SoCConfig()
    page_tables = {0: trace.address_space.page_table}
    hierarchy = design.build(config, page_tables)
    result = simulate(trace, hierarchy, design.soc_config(config),
                      design=design.name)
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "requests": result.requests,
        "counters": result.counters,
    }


def _snapshot():
    return {design.name: _run_design(design) for design in DESIGNS}


@pytest.fixture(scope="module")
def golden():
    snapshot = _snapshot()
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    assert GOLDEN_PATH.exists(), (
        "golden snapshot missing — run with REPRO_REGEN_GOLDEN=1 to record it"
    )
    return json.loads(GOLDEN_PATH.read_text()), snapshot


@pytest.mark.parametrize("design", [d.name for d in DESIGNS])
class TestGoldenEquivalence:
    def test_cycles_exact(self, golden, design):
        recorded, current = golden
        assert current[design]["cycles"] == recorded[design]["cycles"]

    def test_instruction_and_request_totals(self, golden, design):
        recorded, current = golden
        assert current[design]["instructions"] == recorded[design]["instructions"]
        assert current[design]["requests"] == recorded[design]["requests"]

    def test_every_counter_exact(self, golden, design):
        recorded, current = golden
        assert current[design]["counters"] == recorded[design]["counters"]
