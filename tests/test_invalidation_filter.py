"""Tests for the per-L1 invalidation filter."""

from repro.core.invalidation_filter import InvalidationFilter


class TestCounting:
    def test_empty_filter_holds_nothing(self):
        f = InvalidationFilter()
        assert f.might_hold(0, 100) is False
        assert f.filtered == 1

    def test_fill_makes_page_visible(self):
        f = InvalidationFilter()
        f.on_fill(0, 100)
        assert f.might_hold(0, 100) is True
        assert f.lines_from(0, 100) == 1

    def test_counts_accumulate(self):
        f = InvalidationFilter()
        for _ in range(3):
            f.on_fill(0, 100)
        f.on_evict(0, 100)
        assert f.might_hold(0, 100) is True
        assert f.lines_from(0, 100) == 2

    def test_last_eviction_clears_page(self):
        f = InvalidationFilter()
        f.on_fill(0, 100)
        f.on_evict(0, 100)
        assert f.might_hold(0, 100) is False
        assert len(f) == 0

    def test_evict_untracked_is_noop(self):
        f = InvalidationFilter()
        f.on_evict(0, 100)
        assert len(f) == 0

    def test_pages_are_asid_qualified(self):
        f = InvalidationFilter()
        f.on_fill(0, 100)
        assert f.might_hold(1, 100) is False

    def test_clear_after_full_flush(self):
        f = InvalidationFilter()
        f.on_fill(0, 1)
        f.on_fill(0, 2)
        f.clear()
        assert len(f) == 0
        assert f.might_hold(0, 1) is False

    def test_filter_rate_statistics(self):
        f = InvalidationFilter()
        f.on_fill(0, 1)
        f.might_hold(0, 1)   # hit
        f.might_hold(0, 2)   # filtered
        f.might_hold(0, 3)   # filtered
        assert f.checks == 3
        assert f.filtered == 2
