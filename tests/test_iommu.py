"""Tests for the page-walk cache, walker, and IOMMU."""

import pytest

from repro.memsys.address_space import System
from repro.memsys.addressing import page_number
from repro.memsys.iommu import IOMMU, IOMMUConfig
from repro.memsys.page_table import FrameAllocator, PageTable
from repro.memsys.page_table_walker import PageTableWalker
from repro.memsys.page_walk_cache import PageWalkCache
from repro.memsys.permissions import PageFault


def mapped_table(n_pages: int = 64):
    pt = PageTable(FrameAllocator())
    for vpn in range(n_pages):
        pt.map(0x1000 + vpn, 0x50 + vpn)
    return pt


class TestPageWalkCache:
    def test_cold_walk_goes_to_memory(self):
        pwc = PageWalkCache(hit_latency=2.0, memory_latency=100.0)
        pt = mapped_table()
        nodes = pt.walk(0x1000).node_addresses
        latency, mem = pwc.walk_latency(nodes)
        assert mem == 4
        assert latency == 400.0

    def test_warm_walk_hits_directories(self):
        pwc = PageWalkCache(hit_latency=2.0, memory_latency=100.0)
        pt = mapped_table()
        pwc.walk_latency(pt.walk(0x1000).node_addresses)
        latency, mem = pwc.walk_latency(pt.walk(0x1001).node_addresses)
        # Three directory hits + leaf PTE from memory.
        assert mem == 1
        assert latency == 2.0 * 3 + 100.0

    def test_leaf_caching_optional(self):
        pwc = PageWalkCache(hit_latency=2.0, memory_latency=100.0,
                            cache_leaf_level=True)
        pt = mapped_table()
        pwc.walk_latency(pt.walk(0x1000).node_addresses)
        latency, mem = pwc.walk_latency(pt.walk(0x1000).node_addresses)
        assert mem == 0
        assert latency == 8.0


class TestPageTableWalker:
    def test_walk_returns_translation(self):
        ptw = PageTableWalker(mapped_table(), n_threads=16)
        walk = ptw.walk(0x1000, now=0.0)
        assert walk.result.ppn == 0x50
        assert walk.latency > 0

    def test_concurrent_walks_share_threads(self):
        # Use VPNs so far apart they share no directory entries, giving
        # each walk the same (cold) service time.
        pt = PageTable(FrameAllocator())
        # Root indices 8 apart: different PWC lines even at the root, so
        # every walk is fully cold (4 memory accesses each).
        stride = 8 * 512 ** 3
        for i in range(4):
            pt.map(i * stride, 10 + i)
        ptw = PageTableWalker(pt, PageWalkCache(), n_threads=2)
        finishes = [ptw.walk(i * stride, now=0.0).finish for i in range(4)]
        # With 2 threads, the 3rd and 4th walks queue behind the first two.
        assert finishes[0] == finishes[1]
        assert finishes[2] == pytest.approx(2 * finishes[0])
        assert finishes[3] == pytest.approx(2 * finishes[1])

    def test_mean_latency_accounting(self):
        ptw = PageTableWalker(mapped_table(), n_threads=16)
        ptw.walk(0x1000, now=0.0)
        ptw.walk(0x1001, now=1000.0)
        assert ptw.walks == 2
        assert ptw.mean_latency() > 0

    def test_unmapped_faults(self):
        ptw = PageTableWalker(mapped_table(), n_threads=1)
        with pytest.raises(PageFault):
            ptw.walk(0xBAD, now=0.0)


class TestIOMMU:
    def make(self, entries=8, bandwidth=1.0, second_level=None):
        return IOMMU(
            IOMMUConfig(shared_tlb_entries=entries, bandwidth=bandwidth),
            {0: mapped_table()},
            second_level=second_level,
        )

    def test_walk_then_tlb_hit(self):
        iommu = self.make()
        first = iommu.translate(0x1000, 0.0)
        assert first.source == "walk"
        second = iommu.translate(0x1000, first.finish)
        assert second.source == "shared_tlb"
        assert second.latency < first.latency
        assert second.ppn == first.ppn == 0x50

    def test_bandwidth_serializes_requests(self):
        iommu = self.make(bandwidth=1.0)
        iommu.translate(0x1000, 0.0)
        # Prime the TLB, then hammer it in one cycle.
        finishes = [iommu.translate(0x1000, 100.0).finish for _ in range(4)]
        assert finishes[1] - finishes[0] == pytest.approx(1.0)
        assert finishes[3] - finishes[0] == pytest.approx(3.0)

    def test_queue_cycles_accumulate_sub_cycle_waits(self):
        # Regression: queue delay used to be truncated per request
        # (int(0.5) == 0), so a 2-access/cycle port that made every
        # other request wait half a cycle reported zero queue cycles.
        iommu = self.make(bandwidth=2.0)
        iommu.translate(0x1000, 0.0)  # prime; service starts at 0, no wait
        for _ in range(4):
            iommu.translate(0x1000, 100.0)
        # Waits at the port: 0, 0.5, 1.0, 1.5 cycles → 3.0 total.
        assert iommu.queue_cycles == pytest.approx(3.0)
        assert iommu.counters["iommu.queue_cycles"] == 3

    def test_queue_cycles_round_once_not_per_request(self):
        iommu = self.make(bandwidth=2.0)
        iommu.translate(0x1000, 0.0)
        iommu.translate(0x1000, 100.0)
        iommu.translate(0x1000, 100.0)  # waits 0.5 cycles
        # A single sub-cycle wait rounds to 0 or 1 once at reporting —
        # but is preserved exactly in the float total.
        assert iommu.queue_cycles == pytest.approx(0.5)
        assert iommu.counters["iommu.queue_cycles"] == round(0.5)

    def test_unlimited_bandwidth_does_not_queue(self):
        iommu = self.make(bandwidth=float("inf"))
        iommu.translate(0x1000, 0.0)
        finishes = [iommu.translate(0x1000, 100.0).finish for _ in range(4)]
        assert finishes[0] == finishes[3]

    def test_capacity_evicts_lru(self):
        iommu = self.make(entries=2)
        t = 0.0
        for vpn in (0x1000, 0x1001, 0x1002):
            t = iommu.translate(vpn, t).finish
        out = iommu.translate(0x1000, t)
        assert out.source == "walk"  # evicted by 0x1002

    def test_fbt_as_second_level(self):
        class FakeFBT:
            def __init__(self):
                self.queries = []

            def forward_translate(self, asid, vpn):
                self.queries.append((asid, vpn))
                if vpn == 0x1000:
                    from repro.memsys.permissions import Permissions
                    return (0x77, Permissions.READ_WRITE)
                return None

        fbt = FakeFBT()
        iommu = self.make(entries=4, second_level=fbt)
        out = iommu.translate(0x1000, 0.0)
        assert out.source == "fbt"
        assert out.ppn == 0x77
        assert fbt.queries == [(0, 0x1000)]
        # The hit was promoted into the shared TLB.
        assert iommu.translate(0x1000, out.finish).source == "shared_tlb"

    def test_fbt_miss_falls_through_to_walk(self):
        class EmptyFBT:
            def forward_translate(self, asid, vpn):
                return None

        iommu = self.make(entries=4, second_level=EmptyFBT())
        assert iommu.translate(0x1000, 0.0).source == "walk"
        assert iommu.counters["iommu.fbt_misses"] == 1

    def test_homonyms_are_asid_tagged(self):
        sys_ = System()
        a = sys_.create_address_space(asid=0)
        b = sys_.create_address_space(asid=1)
        ma = a.mmap(1)
        mb = b.mmap(1)
        # Force the same VPN in both spaces.
        vpn = page_number(ma.base_va)
        b.page_table.map(vpn, b.page_table.lookup(page_number(mb.base_va))[0])
        iommu = IOMMU(IOMMUConfig(shared_tlb_entries=8),
                      {0: a.page_table, 1: b.page_table})
        out_a = iommu.translate(vpn, 0.0, asid=0)
        out_b = iommu.translate(vpn, out_a.finish, asid=1)
        assert out_a.ppn != out_b.ppn
        assert out_b.source == "walk"  # no false hit across ASIDs

    def test_shootdown_invalidate(self):
        iommu = self.make()
        out = iommu.translate(0x1000, 0.0)
        assert iommu.invalidate(0x1000) is True
        assert iommu.translate(0x1000, out.finish).source == "walk"

    def test_access_sampler_records(self):
        iommu = self.make()
        iommu.translate(0x1000, 0.0)
        iommu.translate(0x1001, 10.0)
        assert iommu.access_sampler.total_events == 2

    def test_page_fault_propagates(self):
        iommu = self.make()
        with pytest.raises(PageFault):
            iommu.translate(0xBAD, 0.0)

    def test_requires_a_page_table(self):
        with pytest.raises(ValueError):
            IOMMU(IOMMUConfig(), {})
