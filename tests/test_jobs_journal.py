"""Durable jobs: journal unit behaviour, restart recovery, SIGTERM flush."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.robustness.checkpoint import append_record
from repro.service.client import ServiceClient
from repro.service.jobs import JobJournal
from repro.service.server import ExperimentService

SCALE = 0.05
POINT = {"workload": "bfs", "design": "baseline-512"}
OTHER_POINT = {"workload": "bfs", "design": "ideal-mmu"}

REPO_ROOT = Path(__file__).resolve().parent.parent


# -- journal unit tests ---------------------------------------------------

def test_journal_round_trip(tmp_path):
    journal = JobJournal(tmp_path / "jobs.rpck")
    body = json.dumps({"points": [POINT]}).encode("utf-8")
    journal.record_submitted("job-1", body, "trace-1", 123.0)
    journal.record_finished("job-1", "done", {"points": []}, 124.0)

    fresh = JobJournal(tmp_path / "jobs.rpck")
    jobs = fresh.replay()
    assert [j.job_id for j in jobs] == ["job-1"]
    job = jobs[0]
    assert job.finished
    assert job.status == "done"
    assert job.payload == {"points": []}
    assert job.body == body
    assert job.trace_id == "trace-1"


def test_journal_unfinished_job_preserved(tmp_path):
    journal = JobJournal(tmp_path / "jobs.rpck")
    body = json.dumps({"points": [POINT]}).encode("utf-8")
    journal.record_submitted("job-crashed", body, "trace-x", 1.0)

    jobs = JobJournal(tmp_path / "jobs.rpck").replay()
    assert len(jobs) == 1
    assert not jobs[0].finished
    assert jobs[0].body == body


def test_journal_torn_tail_repaired(tmp_path):
    path = tmp_path / "jobs.rpck"
    journal = JobJournal(path)
    journal.record_submitted("job-1", b"{}", "t", 1.0)
    journal.record_finished("job-1", "done", {"points": []}, 2.0)
    with open(path, "ab") as handle:
        handle.write(b"\x00garbage torn tail")

    fresh = JobJournal(path)
    jobs = fresh.replay()
    assert fresh.repaired_bytes > 0
    assert [j.job_id for j in jobs] == ["job-1"]
    assert jobs[0].finished


def test_journal_orphan_finished_dropped(tmp_path):
    journal = JobJournal(tmp_path / "jobs.rpck")
    journal.record_finished("ghost", "done", {"points": []}, 1.0)
    assert JobJournal(tmp_path / "jobs.rpck").replay() == []


def test_journal_malformed_record_skipped(tmp_path):
    path = tmp_path / "jobs.rpck"
    append_record(path, ("not-a-job-record", 42))
    journal = JobJournal(path)
    journal.record_submitted("job-1", b"{}", "t", 1.0)
    jobs = JobJournal(path).replay()
    assert [j.job_id for j in jobs] == ["job-1"]


# -- in-process restart recovery ------------------------------------------

def _service(tmp_path, journal_name="jobs.rpck"):
    return ExperimentService(
        port=0, jobs=1, scale=SCALE, cache_dir=str(tmp_path / "cache"),
        batch_window=0.005, jobs_journal=str(tmp_path / journal_name))


def test_restart_serves_finished_job(tmp_path):
    first = _service(tmp_path)
    first.start_in_thread()
    try:
        with ServiceClient(first.host, first.port) as client:
            job_id = client.submit([POINT])
            result = client.wait(job_id, timeout=120.0)
            cycles = result.points[0].cycles
    finally:
        first.shutdown()

    second = _service(tmp_path)
    second.start_in_thread()
    try:
        with ServiceClient(second.host, second.port) as client:
            reply = client.poll(job_id)
            assert reply.status == "done"
            assert reply.result is not None
            assert reply.result.points[0].cycles == cycles
    finally:
        second.shutdown()


def test_restart_resumes_unfinished_job(tmp_path):
    # Simulate a crash after the submit was journaled but before the
    # job ran: only the "submitted" record exists on disk.
    journal = JobJournal(tmp_path / "jobs.rpck")
    body = json.dumps({"points": [POINT]}).encode("utf-8")
    journal.record_submitted("job-resume", body, "trace-resume", time.time())

    service = _service(tmp_path)
    service.start_in_thread()
    try:
        with ServiceClient(service.host, service.port) as client:
            result = client.wait("job-resume", timeout=120.0)
            assert len(result.points) == 1
            assert result.points[0].cycles > 0
    finally:
        service.shutdown()

    # The resumed run must itself have been journaled as finished.
    jobs = JobJournal(tmp_path / "jobs.rpck").replay()
    assert [j.job_id for j in jobs] == ["job-resume"]
    assert jobs[0].finished and jobs[0].status == "done"


def test_restart_replays_invalid_body_as_failed(tmp_path):
    journal = JobJournal(tmp_path / "jobs.rpck")
    journal.record_submitted("job-bad", b"not json at all", "t", time.time())

    service = _service(tmp_path)
    service.start_in_thread()
    try:
        with ServiceClient(service.host, service.port) as client:
            reply = client.poll("job-bad")
            assert reply.status == "failed"
    finally:
        service.shutdown()


# -- subprocess SIGTERM flush (the real crash drill) ----------------------

def test_sigterm_flushes_job_journal_and_restart_serves(tmp_path):
    """SIGTERM with a journaled job: drain finishes it, the journal holds
    its terminal record, and a restarted server serves the result."""
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_SCALE", None)
    journal_path = tmp_path / "jobs.rpck"
    proc = subprocess.Popen(
        [sys.executable, "-u", "-c",
         "from repro.experiments.cli import main; raise SystemExit(main())",
         "serve", "--port", "0", "--scale", "0.1",
         "--cache-dir", str(tmp_path / "cache"),
         "--jobs-journal", str(journal_path)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(tmp_path))
    try:
        banner = proc.stdout.readline()
        assert "listening on http://" in banner, banner
        port = int(banner.rsplit(":", 1)[1])

        with ServiceClient("127.0.0.1", port, timeout=60.0) as client:
            job_id = client.submit([POINT])
        assert journal_path.exists()  # journaled before the ack

        time.sleep(0.2)
        proc.send_signal(signal.SIGTERM)
        stdout, _ = proc.communicate(timeout=120)
        assert proc.returncode == 0, stdout
        assert "drained cleanly" in stdout
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)

    # The drain flushed the job's terminal record.
    jobs = JobJournal(journal_path).replay()
    assert [j.job_id for j in jobs] == [job_id]
    assert jobs[0].finished and jobs[0].status == "done"

    # A restarted server serves the recorded result without recompute.
    restarted = ExperimentService(
        port=0, jobs=1, scale=0.1, cache_dir=str(tmp_path / "cache"),
        batch_window=0.005, jobs_journal=str(journal_path))
    restarted.start_in_thread()
    try:
        with ServiceClient(restarted.host, restarted.port) as client:
            reply = client.poll(job_id)
            assert reply.status == "done"
            assert reply.result is not None
            assert reply.result.points[0].cycles > 0
    finally:
        restarted.shutdown()
