"""Tests for the L1-only virtual cache design (§5.4)."""

import pytest

from repro.core.l1_only import ASDT, L1OnlyVirtualHierarchy
from repro.gpu.coalescer import CoalescedRequest
from repro.memsys.address_space import AddressSpace
from repro.memsys.addressing import line_address
from repro.memsys.permissions import Permissions, ReadWriteSynonymFault


@pytest.fixture
def space():
    return AddressSpace(asid=0)


def l1vc(small_config, space):
    return L1OnlyVirtualHierarchy(small_config, {0: space.page_table})


def read_req(va):
    return CoalescedRequest(line_addr=line_address(va), is_write=False, n_lanes=1)


def write_req(va):
    return CoalescedRequest(line_addr=line_address(va), is_write=True, n_lanes=1)


class TestASDT:
    def test_first_access_becomes_leading(self):
        a = ASDT()
        e = a.check(0, 100, 5, False)
        assert e.leading_vpn == 100
        assert a.ppn_of_leading(0, 100) == 5

    def test_synonym_counted(self):
        a = ASDT()
        a.check(0, 100, 5, False)
        e = a.check(0, 200, 5, False)
        assert e.leading_vpn == 100
        assert a.synonym_accesses == 1

    def test_rw_synonym_faults(self):
        a = ASDT()
        a.check(0, 100, 5, True)
        with pytest.raises(ReadWriteSynonymFault):
            a.check(0, 200, 5, False)

    def test_entry_dies_with_last_line(self):
        a = ASDT()
        a.check(0, 100, 5, False)
        a.on_fill(5)
        a.on_fill(5)
        a.on_evict(5)
        assert len(a) == 1
        a.on_evict(5)
        assert len(a) == 0
        assert a.ppn_of_leading(0, 100) is None


class TestL1OnlyHierarchy:
    def test_l1_read_hit_skips_translation(self, small_config, space):
        h = l1vc(small_config, space)
        m = space.mmap(1)
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        before = h.counters["tlb.accesses"]
        t2 = h.access(0, read_req(m.base_va), now=t1)
        assert h.counters["tlb.accesses"] == before  # no TLB consulted
        assert t2 - t1 == small_config.l1_latency

    def test_l1_miss_consults_per_cu_tlb(self, small_config, space):
        h = l1vc(small_config, space)
        m = space.mmap(2)
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        h.access(0, read_req(m.base_va + 4096), now=t1)
        assert h.counters["tlb.accesses"] == 2
        assert h.counters["tlb.misses"] == 2

    def test_writes_always_need_translation(self, small_config, space):
        # Write-through to the *physical* L2: even an L1 write hit needs
        # a physical address — the key limit of L1-only designs.
        h = l1vc(small_config, space)
        m = space.mmap(1)
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        before = h.counters["tlb.accesses"]
        h.access(0, write_req(m.base_va), now=t1)
        assert h.counters["tlb.accesses"] == before + 1

    def test_l2_is_physically_indexed(self, small_config, space):
        h = l1vc(small_config, space)
        m = space.mmap(1)
        h.access(0, read_req(m.base_va), now=0.0)
        pa = space.translate(m.base_va)
        assert h.l2.contains(pa // 128)

    def test_l2_shared_across_cus(self, small_config, space):
        h = l1vc(small_config, space)
        m = space.mmap(1)
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        h.access(1, read_req(m.base_va), now=t1)
        assert h.counters["l2.hits"] == 1

    def test_synonym_read_replays_to_leading_l1_line(self, small_config, space):
        h = l1vc(small_config, space)
        m = space.mmap(1, permissions=Permissions.READ_ONLY)
        syn = space.map_synonym(m)
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        h.access(0, read_req(syn.base_va), now=t1)
        assert h.counters["vc.synonym_replays"] == 1
        # Replay hit the leading line already in this CU's L1.
        assert h.counters["vc.l1_hits"] >= 1

    def test_rw_synonym_faults(self, small_config, space):
        h = l1vc(small_config, space)
        m = space.mmap(1)
        syn = space.map_synonym(m)
        # Cache the leading copy, then write it while resident: a
        # subsequent synonymous read could observe stale L1 data, so
        # the design faults.
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        t2 = h.access(0, write_req(m.base_va), now=t1)
        with pytest.raises(ReadWriteSynonymFault):
            h.access(0, read_req(syn.base_va), now=t2)

    def test_write_to_untracked_page_is_safe(self, small_config, space):
        # A write-through to a page with no L1-resident data creates no
        # hazard and must not fault later synonymous reads... until the
        # leading copy is actually cached and written.
        h = l1vc(small_config, space)
        m = space.mmap(1)
        syn = space.map_synonym(m)
        t1 = h.access(0, write_req(m.base_va), now=0.0)
        t2 = h.access(0, read_req(syn.base_va), now=t1)  # no fault
        assert h.counters.as_dict().get("vc.synonym_replays", 0) == 0

    def test_asdt_tracks_l1_contents(self, small_config, space):
        h = l1vc(small_config, space)
        m = space.mmap(1)
        h.access(0, read_req(m.base_va), now=0.0)
        pa = space.translate(m.base_va)
        assert h.asdt.leading_of(pa // 4096) is not None
