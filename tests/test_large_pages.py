"""Tests for 2 MB large-page support (§4.3, "Large Page Support")."""

import pytest

from repro.core.fbt import ForwardBackwardTable
from repro.core.virtual_hierarchy import VirtualCacheHierarchy
from repro.gpu.coalescer import CoalescedRequest
from repro.memsys.address_space import AddressSpace
from repro.memsys.addressing import (
    BASE_PAGES_PER_LARGE,
    LARGE_PAGE_SIZE,
    large_page_base_vpn,
    line_address,
    page_number,
)
from repro.memsys.iommu import IOMMU, IOMMUConfig
from repro.memsys.page_table import FrameAllocator, PageTable
from repro.memsys.permissions import Permissions

RW = Permissions.READ_WRITE


class TestFrameAllocator:
    def test_contiguous_aligned(self):
        fa = FrameAllocator()
        base = fa.allocate_contiguous(512, align=512)
        assert base % 512 == 0
        next_frame = fa.allocate()
        assert next_frame == base + 512

    def test_validation(self):
        fa = FrameAllocator()
        with pytest.raises(ValueError):
            fa.allocate_contiguous(0)
        with pytest.raises(ValueError):
            fa.allocate_contiguous(1, align=0)


class TestPageTableLargeMappings:
    def pt(self):
        return PageTable(FrameAllocator())

    def test_map_large_then_walk(self):
        pt = self.pt()
        pt.map_large(0, 512 * 7)
        result = pt.walk(5)
        assert result.is_large
        assert result.ppn == 512 * 7 + 5
        assert result.large_base_vpn == 0
        assert result.large_base_ppn == 512 * 7
        # One level fewer: 3 PTE reads instead of 4.
        assert len(result.node_addresses) == 3

    def test_lookup_covers_whole_range(self):
        pt = self.pt()
        pt.map_large(1024, 512 * 3)
        for offset in (0, 1, 511):
            ppn, perms = pt.lookup(1024 + offset)
            assert ppn == 512 * 3 + offset
        assert pt.lookup(1024 + 512) is None

    def test_alignment_enforced(self):
        pt = self.pt()
        with pytest.raises(ValueError):
            pt.map_large(3, 512)
        with pytest.raises(ValueError):
            pt.map_large(512, 17)

    def test_no_shadowing_of_4k_mappings(self):
        pt = self.pt()
        pt.map(1024 + 5, 99)
        with pytest.raises(ValueError):
            pt.map_large(1024, 512 * 2)

    def test_no_4k_inside_large(self):
        pt = self.pt()
        pt.map_large(1024, 512 * 2)
        with pytest.raises(ValueError):
            pt.map(1024 + 5, 99)

    def test_mapping_counters(self):
        pt = self.pt()
        pt.map_large(0, 512)
        pt.map(1024, 7)
        assert pt.n_large_mappings == 1
        assert pt.n_mappings == 1


class TestAddressSpaceLargePages:
    def test_mmap_large_rounds_and_aligns(self):
        space = AddressSpace(asid=0)
        m = space.mmap(100, large_pages=True)
        assert m.large
        assert m.n_pages == BASE_PAGES_PER_LARGE
        assert m.base_va % LARGE_PAGE_SIZE == 0

    def test_large_mapping_physically_contiguous(self):
        space = AddressSpace(asid=0)
        m = space.mmap(512, large_pages=True)
        pa0 = space.translate(m.base_va)
        pa_last = space.translate(m.base_va + m.size_bytes - 1)
        assert pa_last - pa0 == m.size_bytes - 1

    def test_mixed_allocations_coexist(self):
        space = AddressSpace(asid=0)
        small = space.mmap(3)
        big = space.mmap(600, large_pages=True)
        assert big.n_pages == 1024  # rounded to two large pages
        assert space.translate(small.base_va) is not None
        assert space.translate(big.base_va + LARGE_PAGE_SIZE) is not None


class TestIOMMULargePages:
    def test_walk_carries_large_info(self):
        space = AddressSpace(asid=0)
        m = space.mmap(512, large_pages=True)
        iommu = IOMMU(IOMMUConfig(shared_tlb_entries=8), {0: space.page_table})
        vpn = page_number(m.base_va) + 9
        out = iommu.translate(vpn, 0.0)
        assert out.source == "walk" and out.is_large
        assert out.large_base_vpn == large_page_base_vpn(vpn)
        # A shared-TLB hit keeps the provenance.
        out2 = iommu.translate(vpn, out.finish)
        assert out2.source == "shared_tlb" and out2.is_large


class TestFBTCounterPolicy:
    def make(self):
        return ForwardBackwardTable(n_entries=64, associativity=4,
                                    large_page_policy="counter")

    def test_one_entry_covers_large_page(self):
        fbt = self.make()
        check = fbt.check_access(0, 1024 + 3, 512 * 4 + 3, RW, 0, False,
                                 is_large=True, large_base_vpn=1024,
                                 large_base_ppn=512 * 4)
        assert check.status == "new_leading"
        assert check.entry.tracking == "counter"
        again = fbt.check_access(0, 1024 + 77, 512 * 4 + 77, RW, 5, False,
                                 is_large=True, large_base_vpn=1024,
                                 large_base_ppn=512 * 4)
        assert again.status == "leading"
        assert again.entry is check.entry
        assert fbt.counters["fbt.allocations"] == 1

    def test_counter_tracks_fills_by_base(self):
        fbt = self.make()
        check = fbt.check_access(0, 1024, 512 * 4, RW, 0, False,
                                 is_large=True, large_base_vpn=1024,
                                 large_base_ppn=512 * 4)
        fbt.note_l2_fill(512 * 4 + 100, 7)  # a subpage fill
        assert check.entry.line_count == 1
        fbt.note_l2_eviction(0, 1024 + 100, 7)
        assert check.entry.line_count == 0

    def test_large_synonym_keeps_subpage_offset(self):
        fbt = self.make()
        fbt.check_access(0, 1024, 512 * 4, RW, 0, False,
                         is_large=True, large_base_vpn=1024,
                         large_base_ppn=512 * 4)
        check = fbt.check_access(0, 4096 + 33, 512 * 4 + 33, RW, 0, False,
                                 is_large=True, large_base_vpn=4096,
                                 large_base_ppn=512 * 4)
        assert check.status == "synonym"
        assert check.leading_vpn == 1024 + 33

    def test_shootdown_of_subpage_kills_large_entry(self):
        fbt = self.make()
        fbt.check_access(0, 1024, 512 * 4, RW, 0, False,
                         is_large=True, large_base_vpn=1024,
                         large_base_ppn=512 * 4)
        fbt.note_l2_fill(512 * 4 + 3, 0)
        order = fbt.shootdown(0, 1024 + 3)
        assert order is not None
        assert order.walk_l2
        assert order.n_subpages == BASE_PAGES_PER_LARGE

    def test_probe_reverse_translates_subpage(self):
        fbt = self.make()
        fbt.check_access(0, 1024, 512 * 4, RW, 0, False,
                         is_large=True, large_base_vpn=1024,
                         large_base_ppn=512 * 4)
        physical_line = (512 * 4 + 10) * 32 + 5
        asid, vline, idx, _cached = fbt.reverse_translate_probe(physical_line)
        assert vline == (1024 + 10) * 32 + 5

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ForwardBackwardTable(large_page_policy="giant")


class TestSubpagePolicyDefault:
    def test_subpage_policy_allocates_per_accessed_subpage(self):
        fbt = ForwardBackwardTable(n_entries=64, associativity=4)
        for offset in (0, 3, 99):
            fbt.check_access(0, 1024 + offset, 512 * 4 + offset, RW, 0, False,
                             is_large=True, large_base_vpn=1024,
                             large_base_ppn=512 * 4)
        # One bit-vector entry per touched 4 KB subpage, no prealloc.
        assert fbt.counters["fbt.allocations"] == 3
        assert all(e.tracking == "bitvector" for e in fbt.bt.entries())


class TestHierarchyWithLargePages:
    def run_hierarchy(self, small_config, policy):
        space = AddressSpace(asid=0)
        m = space.mmap(512, large_pages=True)
        h = VirtualCacheHierarchy(small_config, {0: space.page_table},
                                  large_page_policy=policy)
        t = 0.0
        for i in range(40):
            va = m.base_va + (i * 37) % 500 * 4096 + (i % 32) * 128
            req = CoalescedRequest(line_address(va), i % 5 == 0, 1)
            t = h.access(0, req, t) + 1
        # Reads hit after fills.
        va = m.base_va + 37 * 4096 + 128
        t2 = h.access(0, CoalescedRequest(line_address(va), False, 1), t)
        return h, space, m

    def test_subpage_policy_end_to_end(self, small_config):
        h, space, m = self.run_hierarchy(small_config, "subpage")
        assert h.counters["vc.accesses"] > 0
        assert len(h.fbt.bt) > 1  # one entry per touched subpage

    def test_counter_policy_end_to_end(self, small_config):
        h, space, m = self.run_hierarchy(small_config, "counter")
        assert len(h.fbt.bt) == 1  # one counter entry for the large page
        entry = h.fbt.bt.entries()[0]
        assert entry.tracking == "counter"
        assert entry.line_count == len(h.l2)

    def test_counter_policy_shootdown_walks_l2(self, small_config):
        h, space, m = self.run_hierarchy(small_config, "counter")
        vpn = page_number(m.base_va) + 3
        assert h.shootdown(0, vpn, now=1e6) is True
        assert len(h.l2) == 0
        assert len(h.fbt.bt) == 0
