"""Network-chaos suite: fault plan determinism and per-fault resilience."""

import json

import pytest

from repro.experiments import netchaos
from repro.service.chaosnet import NET_KINDS, ChaosProxy, NetFaultPlan

TWO_POINTS = (("bfs", "baseline-512"), ("bfs", "ideal-mmu"))


# -- plan and parsing unit tests ------------------------------------------

def test_fault_plan_is_deterministic():
    rates = {"reset": 0.3, "latency": 0.2}
    one = [NetFaultPlan(rates, seed=7).fault_for(i) for i in range(64)]
    two = [NetFaultPlan(rates, seed=7).fault_for(i) for i in range(64)]
    assert one == two
    assert any(kind == "reset" for kind in one)
    assert any(kind is None for kind in one)
    # A different seed draws a different sequence.
    other = [NetFaultPlan(rates, seed=8).fault_for(i) for i in range(64)]
    assert one != other


def test_fault_plan_validates_rates():
    with pytest.raises(ValueError):
        NetFaultPlan({"warp": 0.1})
    with pytest.raises(ValueError):
        NetFaultPlan({"reset": 1.5})
    with pytest.raises(ValueError):
        NetFaultPlan({"reset": -0.1})
    with pytest.raises(ValueError):
        NetFaultPlan({"reset": 0.6, "latency": 0.6})


def test_parse_net_rates():
    assert netchaos.parse_net_rates("reset=0.2,corrupt=0.1") == {
        "reset": 0.2, "corrupt": 0.1}
    with pytest.raises(ValueError):
        netchaos.parse_net_rates("warp=0.2")
    with pytest.raises(ValueError):
        netchaos.parse_net_rates("reset=lots")
    with pytest.raises(ValueError):
        netchaos.parse_net_rates("")


def test_chaos_proxy_counts_faults():
    plan = NetFaultPlan({"reset": 1.0}, seed=1)
    # No upstream needed: a reset aborts before dialing upstream.
    proxy = ChaosProxy("127.0.0.1", 1, plan)
    proxy.start_in_thread()
    try:
        import socket

        for _ in range(2):
            with socket.create_connection((proxy.host, proxy.port),
                                          timeout=5.0) as sock:
                sock.sendall(b"GET / HTTP/1.1\r\n\r\n")
                assert sock.recv(4096) == b""  # reset/closed, never data
    finally:
        proxy.shutdown()
    assert proxy.counts["reset"] == 2
    assert proxy.counts["clean"] == 0


# -- end-to-end resilience, one fault class at a time ---------------------

@pytest.mark.parametrize("kind", NET_KINDS)
def test_resilient_under_single_fault_class(kind):
    report = netchaos.run(
        rates={kind: 0.4}, seed=3, replicas=2, requests=8,
        points=TWO_POINTS, scale=0.02, retries=5)
    assert report.injected.get(kind, 0) >= 1, report.as_dict()
    assert report.wrong_results == 0, report.as_dict()
    assert report.ok, report.as_dict()


def test_netchaos_main_writes_report(tmp_path):
    out = tmp_path / "net.json"
    code = netchaos.main(rates_text="reset=0.25,latency=0.15", seed=11,
                         replicas=2, requests=8, scale=0.02,
                         out=str(out))
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["ok"] is True
    assert payload["wrong_results"] == 0
    assert payload["requests"] == 8
    assert set(payload["injected"]) <= set(NET_KINDS) | {"clean"}


def test_netchaos_main_rejects_bad_rates(capsys):
    assert netchaos.main(rates_text="warp=0.5") == 2
    assert "bad --net-rates" in capsys.readouterr().out
