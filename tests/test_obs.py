"""Tests for the observability layer (repro.obs).

Covers the tracer enabled/disabled paths, histogram percentile math
against known distributions, manifest round-trips, the CLI UX, and the
central invariant: attaching observability never changes simulation
results.
"""

import io
import json

import pytest

from repro.engine.stats import Counters
from repro.memsys.address_space import AddressSpace
from repro.obs import (
    NULL_TRACER,
    JsonLinesTracer,
    LatencyHistogram,
    MetricsRegistry,
    Observability,
    Profiler,
    RecordingTracer,
    build_manifest,
    git_sha,
    load_manifest,
    write_manifest,
)
from repro.system.designs import BASELINE_512, VC_WITH_OPT
from repro.system.run import simulate
from repro.workloads.trace import MemoryInstruction, Trace


def sequential_trace(space, n_pages=16, accesses=150, n_cus=2):
    m = space.mmap(n_pages)
    per_cu = []
    for cu in range(n_cus):
        per_cu.append([
            MemoryInstruction(
                addresses=(m.base_va + ((cu * 7919 + i * 128) % m.size_bytes),))
            for i in range(accesses)
        ])
    return Trace(name="seq", per_cu=per_cu, address_space=space,
                 issue_interval=4.0)


def run_baseline(small_config, obs=None, design=BASELINE_512, **kwargs):
    space = AddressSpace(asid=0)
    trace = sequential_trace(space)
    hierarchy = design.build(small_config, {0: space.page_table}, obs=obs)
    return simulate(trace, hierarchy, small_config, design=design.name,
                    **kwargs)


class TestTracers:
    def test_null_tracer_is_disabled_noop(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("anything", 1.0, cu=0)  # must not raise
        NULL_TRACER.close()

    def test_jsonlines_tracer_writes_one_json_object_per_line(self):
        sink = io.StringIO()
        tracer = JsonLinesTracer(sink)
        tracer.emit("request.issue", 10.0, cu=3, write=False)
        tracer.emit("request.complete", 14.5, cu=3, latency=4.5)
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        assert tracer.events_emitted == 2
        first = json.loads(lines[0])
        assert first == {"ev": "request.issue", "t": 10.0, "cu": 3,
                         "write": False}

    def test_jsonlines_tracer_owns_path_sinks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonLinesTracer(str(path)) as tracer:
            tracer.emit("run.start", 0.0, workload="w")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records == [{"ev": "run.start", "t": 0.0, "workload": "w"}]

    def test_jsonlines_tracer_leaves_borrowed_sinks_open(self):
        sink = io.StringIO()
        tracer = JsonLinesTracer(sink)
        tracer.close()
        assert not sink.closed

    def test_recording_tracer_filters_by_type(self):
        tracer = RecordingTracer()
        tracer.emit("a", 1.0)
        tracer.emit("b", 2.0, x=1)
        tracer.emit("a", 3.0)
        assert [e["t"] for e in tracer.of_type("a")] == [1.0, 3.0]
        assert tracer.of_type("b")[0]["x"] == 1


class TestLatencyHistogram:
    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.as_dict()["p99"] == 0.0

    def test_exact_scalars_alongside_bucketed_percentiles(self):
        hist = LatencyHistogram()
        for v in (3.0, 7.0, 21.0):
            hist.record(v)
        assert hist.count == 3
        assert hist.min == 3.0
        assert hist.max == 21.0
        assert hist.mean == pytest.approx(31.0 / 3)

    def test_percentiles_on_uniform_distribution(self):
        hist = LatencyHistogram()
        for v in range(1, 1001):
            hist.record(float(v))
        # Log-bucketed: geometric-midpoint answers within one bucket
        # (±~9% at 8 sub-buckets/octave) of the exact quantile.
        assert hist.percentile(50) == pytest.approx(500.0, rel=0.12)
        assert hist.percentile(95) == pytest.approx(950.0, rel=0.12)
        assert hist.percentile(99) == pytest.approx(990.0, rel=0.12)
        assert hist.percentile(100) == 1000.0

    def test_percentiles_on_bimodal_distribution(self):
        hist = LatencyHistogram()
        hist.record(10.0, count=90)
        hist.record(1000.0, count=10)
        assert hist.percentile(50) == pytest.approx(10.0, rel=0.12)
        assert hist.percentile(90) == pytest.approx(10.0, rel=0.12)
        assert hist.percentile(95) == pytest.approx(1000.0, rel=0.12)
        assert hist.percentile(99) == pytest.approx(1000.0, rel=0.12)

    def test_zero_values_are_exact(self):
        hist = LatencyHistogram()
        hist.record(0.0, count=99)
        hist.record(50.0)
        assert hist.percentile(50) == 0.0
        assert hist.percentile(99) == 0.0
        assert hist.percentile(100) == pytest.approx(50.0, rel=0.12)

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)

    def test_reset(self):
        hist = LatencyHistogram()
        hist.record(5.0)
        hist.reset()
        assert hist.count == 0
        assert hist.max is None
        assert hist.percentile(99) == 0.0


class TestMetricsRegistry:
    def test_counters_delegate_to_wrapped_bag(self):
        registry = MetricsRegistry()
        registry.add("iommu.accesses", 3)
        assert registry.counters["iommu.accesses"] == 3

    def test_histograms_shared_by_name(self):
        registry = MetricsRegistry()
        assert registry.histogram("x") is registry.histogram("x")
        assert registry.histogram("x") is not registry.histogram("y")

    def test_scope_prefixes_all_instruments(self):
        registry = MetricsRegistry()
        iommu = registry.scope("iommu")
        iommu.add("accesses")
        iommu.set_gauge("occupancy", 0.5)
        iommu.histogram("queue_delay").record(4.0)
        nested = iommu.scope("ptw")
        nested.add("walks")
        snap = registry.snapshot()
        assert snap["counters"] == {"iommu.accesses": 1, "iommu.ptw.walks": 1}
        assert snap["gauges"] == {"iommu.occupancy": 0.5}
        assert snap["histograms"]["iommu.queue_delay"]["count"] == 1

    def test_snapshot_key_order_is_deterministic(self):
        registry = MetricsRegistry()
        registry.add("zebra")
        registry.add("alpha")
        registry.histogram("z_hist").record(1.0)
        registry.histogram("a_hist").record(1.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["alpha", "zebra"]
        assert list(snap["histograms"]) == ["a_hist", "z_hist"]


class TestCounters:
    def test_as_dict_is_sorted(self):
        counters = Counters()
        counters.add("zebra")
        counters.add("alpha", 2)
        counters.add("mid")
        assert list(counters.as_dict()) == ["alpha", "mid", "zebra"]

    def test_merge_from_counters_and_mapping(self):
        a = Counters()
        a.add("x", 1)
        b = Counters()
        b.add("x", 2)
        b.add("y", 5)
        a.merge(b)
        a.merge({"z": 7})
        assert a.as_dict() == {"x": 3, "y": 5, "z": 7}


class TestMerge:
    """Parent-side aggregation of per-worker metrics (run_many)."""

    def test_histogram_merge_is_bucket_exact(self):
        a, b, serial = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for v in (0.0, 0.5, 3.0, 100.0):
            a.record(v)
            serial.record(v)
        for v in (0.25, 7.0, 7.0, 0.0):
            b.record(v)
            serial.record(v)
        a.merge(b)
        assert a.count == serial.count
        assert a.total == pytest.approx(serial.total)
        assert (a.min, a.max) == (serial.min, serial.max)
        for p in (50.0, 95.0, 99.0, 100.0):
            assert a.percentile(p) == serial.percentile(p)

    def test_histogram_merge_into_empty(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        b.record(2.0)
        a.merge(b)
        assert (a.count, a.min, a.max) == (1, 2.0, 2.0)

    def test_histogram_merge_rejects_mismatched_layout(self):
        with pytest.raises(ValueError):
            LatencyHistogram(8).merge(LatencyHistogram(4))

    def test_registry_merge(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.add("runs", 1)
        parent.histogram("lat").record(1.0)
        worker.add("runs", 2)
        worker.histogram("lat").record(4.0)
        worker.set_gauge("last_scale", 0.5)
        parent.merge(worker)
        assert parent.counters.as_dict() == {"runs": 3}
        assert parent.histogram("lat").count == 2
        assert parent.histogram("lat").max == 4.0
        assert parent.gauges() == {"last_scale": 0.5}


class TestManifest:
    def test_git_sha_in_this_repo(self):
        sha = git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_round_trip(self, tmp_path, small_config):
        result = run_baseline(small_config, obs=Observability())
        manifest = build_manifest(result=result, config=small_config,
                                  metrics=result.metrics,
                                  extra={"note": "test"})
        path = write_manifest(tmp_path / "manifest.json", manifest)
        loaded = load_manifest(path)
        assert loaded["schema_version"] == 1
        assert loaded["run"]["workload"] == "seq"
        assert loaded["run"]["cycles"] == result.cycles
        assert loaded["config"]["n_cus"] == small_config.n_cus
        assert loaded["counters"] == result.counters
        assert loaded["note"] == "test"
        for q in ("p50", "p95", "p99"):
            assert q in loaded["metrics"]["histograms"]["iommu.queue_delay"]

    def test_simulate_manifest_out(self, tmp_path, small_config):
        path = tmp_path / "run.json"
        run_baseline(small_config, obs=Observability(), manifest_out=path)
        loaded = load_manifest(path)
        assert "iommu.queue_delay" in loaded["metrics"]["histograms"]
        assert loaded["run"]["wall_clock_seconds"] > 0.0


class TestProfiler:
    def test_spans_nest_and_time(self):
        profiler = Profiler()
        with profiler.span("outer"):
            with profiler.span("inner"):
                pass
        outer, inner = profiler.spans
        assert (outer.name, outer.depth) == ("outer", 0)
        assert (inner.name, inner.depth) == ("inner", 1)
        assert outer.duration >= inner.duration >= 0.0
        assert profiler.total_seconds == outer.duration

    def test_report_lists_spans(self):
        profiler = Profiler()
        with profiler.span("stage"):
            pass
        report = profiler.report()
        assert "stage" in report
        assert "total" in report
        assert Profiler().report() == "profile: no spans recorded"


class TestSimulationWithObservability:
    def test_results_bit_identical_with_tracing_off_vs_on(self, small_config):
        plain = run_baseline(small_config)
        traced = run_baseline(
            small_config, obs=Observability(tracer=RecordingTracer()))
        assert plain.cycles == traced.cycles
        assert plain.counters == traced.counters
        assert plain.requests == traced.requests

    def test_vc_results_bit_identical_with_tracing_off_vs_on(self, small_config):
        plain = run_baseline(small_config, design=VC_WITH_OPT)
        traced = run_baseline(small_config, design=VC_WITH_OPT,
                              obs=Observability(tracer=RecordingTracer()))
        assert plain.cycles == traced.cycles
        assert plain.counters == traced.counters

    def test_disabled_tracer_emits_nothing(self, small_config):
        obs = Observability()  # NULL_TRACER
        result = run_baseline(small_config, obs=obs)
        assert not obs.tracing
        assert result.metrics is obs.metrics  # metrics still collected
        assert obs.metrics.histogram("request.latency").count == result.requests

    def test_traced_baseline_run_emits_request_path_events(self, small_config):
        tracer = RecordingTracer()
        result = run_baseline(small_config, obs=Observability(tracer=tracer))
        issues = tracer.of_type("request.issue")
        completes = tracer.of_type("request.complete")
        assert len(issues) == result.requests
        assert len(completes) == result.requests
        assert all(e["latency"] > 0 for e in completes)
        assert tracer.of_type("run.start")[0]["workload"] == "seq"
        assert tracer.of_type("run.end")[0]["cycles"] == result.cycles
        # Translation path: TLB activity matches the counters exactly.
        assert len(tracer.of_type("tlb.miss")) == result.counters["tlb.misses"]
        assert len(tracer.of_type("iommu.enter")) == \
            result.counters["iommu.accesses"]
        assert len(tracer.of_type("walk.start")) == result.counters["iommu.walks"]

    def test_traced_vc_run_emits_vc_events(self, small_config):
        tracer = RecordingTracer()
        result = run_baseline(small_config, design=VC_WITH_OPT,
                              obs=Observability(tracer=tracer))
        assert len(tracer.of_type("vc.l1_hit")) == \
            result.counters.get("vc.l1_hits", 0)
        assert len(tracer.of_type("vc.miss")) == \
            result.counters.get("vc.l2_misses", 0)
        assert tracer.of_type("vc.miss")  # this workload does miss the L2

    def test_latency_histograms_collected(self, small_config):
        obs = Observability()
        result = run_baseline(small_config, obs=obs)
        histograms = obs.metrics.histograms()
        assert histograms["iommu.queue_delay"].count == \
            result.counters["iommu.accesses"]
        assert histograms["iommu.walk_latency"].count == \
            result.counters["iommu.walks"]
        assert histograms["request.latency"].count == result.requests
        assert histograms["request.latency"].percentile(99) >= \
            histograms["request.latency"].percentile(50) > 0


class TestCLI:
    def test_list_flag(self, capsys):
        from repro.experiments.cli import EXPERIMENTS, main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        assert "all" in out

    def test_unknown_experiment_lists_choices_and_fails(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err
        assert "fig9" in err

    def test_missing_experiment_fails(self, capsys):
        from repro.experiments.cli import main

        assert main([]) == 2
        assert "--list" in capsys.readouterr().err
