"""Overload, deadline, and supervision behaviour of server and gateway."""

import http.client
import json
import threading
import time

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.gateway import launch_local_gateway
from repro.service.server import ExperimentService

SCALE = 0.05
POINT = {"workload": "bfs", "design": "baseline-512"}
OTHER_POINT = {"workload": "bfs", "design": "ideal-mmu"}
THIRD_POINT = {"workload": "kmeans", "design": "baseline-512"}


def _start_service(tmp_path, **kwargs):
    kwargs.setdefault("batch_window", 0.005)
    svc = ExperimentService(
        port=0, jobs=1, scale=SCALE, cache_dir=str(tmp_path / "cache"),
        **kwargs)
    svc.start_in_thread()
    return svc


def _occupy(service, point=POINT):
    """Start a cold request in a thread; returns (thread, error holder)."""
    errors = []

    def _run():
        try:
            with ServiceClient(service.host, service.port,
                               timeout=120.0) as client:
                client.simulate([point])
        except Exception as exc:  # surfaced by the caller
            errors.append(exc)

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    return thread, errors


# -- admission control ----------------------------------------------------

def test_server_sheds_over_max_inflight(tmp_path):
    service = _start_service(tmp_path, max_inflight=1, batch_window=0.5)
    try:
        thread, errors = _occupy(service)
        time.sleep(0.15)  # land inside the first wave's batch window
        with ServiceClient(service.host, service.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.simulate([OTHER_POINT])
            assert excinfo.value.status == 429
            assert excinfo.value.code == "overloaded"
            health = client.healthz()
            assert health.raw["shed_total"] >= 1
            assert health.raw["max_inflight"] == 1
        thread.join(timeout=120)
        assert not errors, errors
    finally:
        service.shutdown()


def test_shed_response_carries_retry_after(tmp_path):
    service = _start_service(tmp_path, max_inflight=1, batch_window=0.5)
    try:
        thread, errors = _occupy(service)
        time.sleep(0.15)
        conn = http.client.HTTPConnection(service.host, service.port,
                                          timeout=30.0)
        try:
            conn.request("POST", "/v1/simulate",
                         body=json.dumps({"points": [OTHER_POINT]}),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            raw = response.read()
            assert response.status == 429
            retry_after = response.getheader("Retry-After")
            assert retry_after is not None and float(retry_after) > 0
            assert json.loads(raw)["error"] == "overloaded"
        finally:
            conn.close()
        thread.join(timeout=120)
        assert not errors, errors
    finally:
        service.shutdown()


def test_duplicate_inflight_point_is_never_shed(tmp_path):
    # A duplicate of an in-flight point coalesces for free, so admission
    # must not count it against the budget.
    service = _start_service(tmp_path, max_inflight=1, batch_window=0.5)
    try:
        thread, errors = _occupy(service)
        time.sleep(0.15)
        with ServiceClient(service.host, service.port,
                           timeout=120.0) as client:
            reply = client.simulate([POINT])  # same point: coalesces
            assert reply.points[0].cycles > 0
        thread.join(timeout=120)
        assert not errors, errors
    finally:
        service.shutdown()


def test_client_retries_through_shed(tmp_path):
    service = _start_service(tmp_path, max_inflight=1, batch_window=0.4)
    try:
        thread, errors = _occupy(service)
        time.sleep(0.1)
        with ServiceClient(service.host, service.port, timeout=120.0,
                           retries=5, retry_budget_s=60.0,
                           retry_seed=7) as client:
            reply = client.simulate([OTHER_POINT])
            assert reply.points[0].cycles > 0
            assert client.retries_performed >= 1
        thread.join(timeout=120)
        assert not errors, errors
    finally:
        service.shutdown()


# -- deadline propagation -------------------------------------------------

def test_expired_deadline_returns_504(tmp_path):
    service = _start_service(tmp_path)
    try:
        with ServiceClient(service.host, service.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.simulate([THIRD_POINT], deadline_ms=1.0)
            assert excinfo.value.status == 504
            assert excinfo.value.code == "deadline_exceeded"
    finally:
        service.shutdown()


def test_malformed_deadline_header_is_400(tmp_path):
    service = _start_service(tmp_path)
    try:
        conn = http.client.HTTPConnection(service.host, service.port,
                                          timeout=30.0)
        try:
            conn.request("POST", "/v1/simulate",
                         body=json.dumps({"points": [POINT]}),
                         headers={"Content-Type": "application/json",
                                  "X-Deadline-Ms": "soonish"})
            response = conn.getresponse()
            response.read()
            assert response.status == 400
        finally:
            conn.close()
    finally:
        service.shutdown()


def test_nonpositive_deadline_header_is_504(tmp_path):
    service = _start_service(tmp_path)
    try:
        conn = http.client.HTTPConnection(service.host, service.port,
                                          timeout=30.0)
        try:
            conn.request("POST", "/v1/simulate",
                         body=json.dumps({"points": [POINT]}),
                         headers={"Content-Type": "application/json",
                                  "X-Deadline-Ms": "-5"})
            response = conn.getresponse()
            response.read()
            assert response.status == 504
        finally:
            conn.close()
    finally:
        service.shutdown()


# -- gateway passthrough --------------------------------------------------

def test_gateway_passes_shed_through_without_hedging(tmp_path):
    gateway = launch_local_gateway(
        1, mode="thread", cache_dir=str(tmp_path / "cache"), scale=SCALE,
        batch_window=0.5, max_inflight=1, health_interval=0.2)
    try:
        thread, errors = _occupy(gateway)
        time.sleep(0.15)
        with ServiceClient(gateway.host, gateway.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.simulate([OTHER_POINT])
            assert excinfo.value.status == 429
            assert excinfo.value.code == "overloaded"
        counters = gateway.obs.metrics.snapshot()["counters"]
        assert counters.get("gateway.sheds", 0) >= 1
        # Shedding is backpressure, not failure: the replica keeps its
        # place in the pool.
        assert gateway.replicas[0].healthy
        assert gateway.replicas[0].evictions == 0
        thread.join(timeout=120)
        assert not errors, errors
    finally:
        gateway.shutdown()


def test_gateway_passes_deadline_through(tmp_path):
    gateway = launch_local_gateway(
        1, mode="thread", cache_dir=str(tmp_path / "cache"), scale=SCALE,
        health_interval=0.2)
    try:
        with ServiceClient(gateway.host, gateway.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.simulate([THIRD_POINT], deadline_ms=2.0)
            assert excinfo.value.status == 504
            assert excinfo.value.code == "deadline_exceeded"
        assert gateway.replicas[0].healthy  # 504 is not a replica fault
    finally:
        gateway.shutdown()


# -- supervision ----------------------------------------------------------

def _wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_supervisor_respawns_dead_thread_replica(tmp_path):
    gateway = launch_local_gateway(
        2, mode="thread", cache_dir=str(tmp_path / "cache"), scale=SCALE,
        supervise=True, health_interval=0.05, probe_failure_threshold=2,
        respawn_backoff_base=0.05, respawn_backoff_max=0.5,
        flap_window=0.0)
    try:
        victim = gateway.replicas[0]
        old_port = victim.port
        victim.service.shutdown()

        assert _wait_until(lambda: victim.respawns >= 1 and victim.healthy)
        assert victim.port != old_port or victim.service is not None
        assert not victim.given_up

        with ServiceClient(gateway.host, gateway.port,
                           timeout=120.0, retries=3) as client:
            reply = client.simulate([POINT, OTHER_POINT])
            assert len(reply.points) == 2
            health = client.healthz()
            assert health.pool["replicas_healthy"] == 2
        counters = gateway.obs.metrics.snapshot()["counters"]
        assert counters.get("gateway.respawns", 0) >= 1
    finally:
        gateway.shutdown()


def test_flap_detector_gives_up_and_alarms(tmp_path):
    gateway = launch_local_gateway(
        2, mode="thread", cache_dir=str(tmp_path / "cache"), scale=SCALE,
        supervise=True, health_interval=0.05, probe_failure_threshold=2,
        respawn_backoff_base=0.02, respawn_backoff_max=0.1,
        flap_window=3600.0, flap_threshold=2)
    try:
        victim = gateway.replicas[0]
        victim.service.shutdown()
        assert _wait_until(lambda: victim.respawns >= 1 and victim.healthy)

        victim.service.shutdown()  # second rapid death trips the alarm
        assert _wait_until(lambda: victim.given_up)
        assert victim.respawns == 1  # no respawn after giving up
        counters = gateway.obs.metrics.snapshot()["counters"]
        assert counters.get("gateway.alarms.flapping", 0) >= 1

        # The gateway degrades to the surviving replica instead of dying.
        with ServiceClient(gateway.host, gateway.port,
                           timeout=120.0, retries=3) as client:
            reply = client.simulate([POINT])
            assert reply.points[0].cycles > 0
            health = client.healthz()
            assert health.pool["replicas_healthy"] == 1
            assert health.raw["replicas"][victim.id]["given_up"] is True
    finally:
        gateway.shutdown()


def test_eviction_needs_consecutive_probe_failures(tmp_path):
    gateway = launch_local_gateway(
        2, mode="thread", cache_dir=str(tmp_path / "cache"), scale=SCALE,
        health_interval=0.05, probe_failure_threshold=4)
    try:
        victim = gateway.replicas[0]
        victim.service.shutdown()
        # With no client traffic, only probes can evict — and that takes
        # probe_failure_threshold consecutive failures.
        assert _wait_until(lambda: not victim.healthy)
        assert victim.probe_failures >= 4
    finally:
        gateway.shutdown()
