"""Tests for the four-level page table and address spaces."""

import pytest

from repro.memsys.address_space import AddressSpace, System
from repro.memsys.addressing import PAGE_SIZE, page_number
from repro.memsys.page_table import (
    ENTRIES_PER_NODE,
    FrameAllocator,
    PageTable,
    _level_indices,
)
from repro.memsys.permissions import PageFault, Permissions


class TestFrameAllocator:
    def test_sequential_frames(self):
        fa = FrameAllocator(first_frame=5)
        assert fa.allocate() == 5
        assert fa.allocate() == 6

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            FrameAllocator(first_frame=-1)


class TestPageTable:
    def test_map_then_walk(self):
        pt = PageTable(FrameAllocator())
        pt.map(0x1234, 0x99, Permissions.READ_WRITE)
        result = pt.walk(0x1234)
        assert result.ppn == 0x99
        assert result.permissions == Permissions.READ_WRITE

    def test_walk_touches_four_levels(self):
        pt = PageTable(FrameAllocator())
        pt.map(7, 1)
        result = pt.walk(7)
        assert len(result.node_addresses) == 4
        # PTE addresses live in distinct frames (one per level).
        frames = {addr // PAGE_SIZE for addr in result.node_addresses}
        assert len(frames) == 4

    def test_walks_share_directory_entries(self):
        # Neighboring pages share all three upper levels — the locality
        # the page-walk cache exploits.
        pt = PageTable(FrameAllocator())
        pt.map(100, 1)
        pt.map(101, 2)
        a = pt.walk(100).node_addresses
        b = pt.walk(101).node_addresses
        assert a[:3] == b[:3]
        assert a[3] != b[3]

    def test_distant_pages_diverge_high_in_the_tree(self):
        pt = PageTable(FrameAllocator())
        vpn_far = ENTRIES_PER_NODE ** 3  # differs in the root index
        pt.map(0, 1)
        pt.map(vpn_far, 2)
        a = pt.walk(0).node_addresses
        b = pt.walk(vpn_far).node_addresses
        assert a[0] != b[0]

    def test_unmapped_page_faults(self):
        pt = PageTable(FrameAllocator())
        with pytest.raises(PageFault):
            pt.walk(0x5555)

    def test_unmap(self):
        pt = PageTable(FrameAllocator())
        pt.map(9, 1)
        assert pt.unmap(9) is True
        assert pt.unmap(9) is False
        with pytest.raises(PageFault):
            pt.walk(9)

    def test_remap_replaces(self):
        pt = PageTable(FrameAllocator())
        pt.map(9, 1)
        pt.map(9, 2)
        assert pt.walk(9).ppn == 2
        assert pt.n_mappings == 1

    def test_set_permissions(self):
        pt = PageTable(FrameAllocator())
        pt.map(9, 1, Permissions.READ_WRITE)
        pt.set_permissions(9, Permissions.READ_ONLY)
        assert pt.walk(9).permissions == Permissions.READ_ONLY

    def test_set_permissions_on_unmapped_faults(self):
        pt = PageTable(FrameAllocator())
        with pytest.raises(PageFault):
            pt.set_permissions(1, Permissions.READ_ONLY)

    def test_lookup_matches_walk(self):
        pt = PageTable(FrameAllocator())
        pt.map(42, 7)
        assert pt.lookup(42) == (7, Permissions.READ_WRITE)
        assert pt.lookup(43) is None

    def test_level_indices_reconstruct_vpn(self):
        vpn = 0x1_2345_6789
        idx = _level_indices(vpn)
        rebuilt = 0
        for i in idx:
            rebuilt = (rebuilt << 9) | i
        assert rebuilt == vpn

    def test_negative_pages_rejected(self):
        pt = PageTable(FrameAllocator())
        with pytest.raises(ValueError):
            pt.map(-1, 0)


class TestAddressSpace:
    def test_mmap_backs_pages(self):
        space = AddressSpace(asid=0)
        m = space.mmap(4)
        vpn = page_number(m.base_va)
        for i in range(4):
            assert space.page_table.lookup(vpn + i) is not None

    def test_mmap_allocations_do_not_overlap(self):
        space = AddressSpace(asid=0)
        a = space.mmap(3)
        b = space.mmap(3)
        assert a.end_va <= b.base_va

    def test_alloc_array_rounds_up(self):
        space = AddressSpace(asid=0)
        m = space.alloc_array(n_elements=1025, element_size=4)
        assert m.n_pages == 2

    def test_translate(self):
        space = AddressSpace(asid=0)
        m = space.mmap(1)
        pa = space.translate(m.base_va + 123)
        assert pa is not None
        assert pa % PAGE_SIZE == 123
        assert space.translate(0xDEAD_0000_0000) is None

    def test_synonym_shares_frames(self):
        space = AddressSpace(asid=0)
        a = space.mmap(2)
        b = space.map_synonym(a)
        assert b.base_va != a.base_va
        assert space.translate(a.base_va) == space.translate(b.base_va)
        assert space.translate(a.base_va + PAGE_SIZE) == \
            space.translate(b.base_va + PAGE_SIZE)

    def test_footprint(self):
        space = AddressSpace(asid=0)
        space.mmap(2)
        space.mmap(3)
        assert space.footprint_pages() == 5

    def test_invalid_mmap_rejected(self):
        space = AddressSpace(asid=0)
        with pytest.raises(ValueError):
            space.mmap(0)


class TestSystem:
    def test_spaces_share_physical_memory(self):
        sys_ = System()
        a = sys_.create_address_space()
        b = sys_.create_address_space()
        assert a.frames is b.frames

    def test_cross_space_sharing(self):
        sys_ = System()
        a = sys_.create_address_space()
        b = sys_.create_address_space()
        m = a.mmap(2)
        shared = a.share_into(b, m)
        assert a.translate(m.base_va) == b.translate(shared.base_va)

    def test_duplicate_asid_rejected(self):
        sys_ = System()
        sys_.create_address_space(asid=3)
        with pytest.raises(ValueError):
            sys_.create_address_space(asid=3)
