"""Tests for the paper-target comparison machinery."""

import pytest

from repro.analysis.paper_targets import (
    TARGETS,
    Target,
    compare_all,
    render_report,
)


class TestTarget:
    def test_check_bands(self):
        t = Target(key="k", figure="F", description="d",
                   paper_value=1.0, low=0.8, high=1.2)
        assert t.check(1.0)
        assert t.check(0.8) and t.check(1.2)
        assert not t.check(0.79)
        assert t.verdict(2.0) == "OUT-OF-BAND"

    def test_registry_is_consistent(self):
        assert len(TARGETS) >= 15
        for key, target in TARGETS.items():
            assert target.key == key
            assert target.low <= target.high
            # The paper's own value always sits inside its band.
            assert target.check(target.paper_value), key

    def test_every_evaluated_figure_has_targets(self):
        figures = {t.figure for t in TARGETS.values()}
        for fig in ("Figure 2", "Figure 3", "Figure 4", "Figure 5",
                    "Figure 8", "Figure 9", "Figure 10", "Figure 11",
                    "Figure 12"):
            assert fig in figures


class TestComparison:
    def test_compare_all(self):
        comparisons = compare_all({"fig2.avg_miss_ratio_32": 0.5})
        assert len(comparisons) == 1
        assert comparisons[0].ok

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            compare_all({"made.up": 1.0})

    def test_render_report(self):
        text = render_report({
            "fig2.avg_miss_ratio_32": 0.5,
            "fig9.vc_opt_high_bw": 0.2,  # deliberately out of band
        })
        assert "OK" in text
        assert "OUT-OF-BAND" in text
        assert "1/2 claims reproduced" in text
