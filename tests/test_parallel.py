"""Tests for the parallel sweep runner and the persistent result cache.

Covers the ISSUE-2 acceptance criteria: ``run_many(jobs=N)`` is
counter-for-counter identical to serial execution, a warm ``cache_dir``
rerun performs zero new simulations, the memo key includes the
``SoCConfig`` content hash (mutating ``cache.config`` re-simulates),
and ``clear()`` genuinely releases hierarchies.
"""

from __future__ import annotations

import dataclasses
import gc
import os
import pickle
import signal
import subprocess
import sys
import time
import weakref
from pathlib import Path

import pytest

from repro.experiments import common, fig4
from repro.experiments.common import PointFailure, ResultCache, SweepError
from repro.experiments.disk_cache import DiskCache, point_fingerprint
from repro.obs import Observability
from repro.robustness.checkpoint import CheckpointStore
from repro.system.designs import (
    BASELINE_512,
    BASELINE_16K,
    IDEAL_MMU,
    VC_WITH_OPT,
)

TINY = 0.05
WORKLOADS = ("kmeans", "pagerank")
DESIGNS = (IDEAL_MMU, BASELINE_512, VC_WITH_OPT)
POINTS = [(w, d) for w in WORKLOADS for d in DESIGNS]

# The pool pickles submitted callables *by name*, so the crash wrappers
# below must live at module level.  They are parameterized through the
# module global `_FAULT_DIR` (a directory of per-point sentinel files),
# which forked workers inherit; a wrapper misbehaves only until its
# point's sentinel exists, making every failure transient and the retry
# observable.
_FAULT_DIR = None
_REAL_SIMULATE_POINT = common._simulate_point


def _sentinel(workload, design):
    return Path(_FAULT_DIR) / f"{workload}-{design.name}".replace(" ", "_")


def _arm(workload, design):
    """True exactly once per (workload, design): on the first attempt."""
    sentinel = _sentinel(workload, design)
    if sentinel.exists():
        return False
    sentinel.write_text("tripped")
    return True


def _raise_once_point(config, scale, workload, design, *rest):
    if _arm(workload, design):
        raise RuntimeError("injected transient worker crash")
    return _REAL_SIMULATE_POINT(config, scale, workload, design, *rest)


def _is_target(workload, design):
    # A SIGKILL or hang fails the *whole round* (the pool is torn down),
    # charging one attempt to every pending point — so only one point
    # misbehaves, keeping every point within its retry budget.
    return workload == "kmeans" and design.name == IDEAL_MMU.name


def _sigkill_once_point(config, scale, workload, design, *rest):
    if _is_target(workload, design) and _arm(workload, design):
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_SIMULATE_POINT(config, scale, workload, design, *rest)


def _hang_once_point(config, scale, workload, design, *rest):
    if _is_target(workload, design) and _arm(workload, design):
        time.sleep(600)
    return _REAL_SIMULATE_POINT(config, scale, workload, design, *rest)


def _always_fail_point(config, scale, workload, design, *rest):
    raise RuntimeError("injected permanent worker crash")


@pytest.fixture
def fault_dir(tmp_path, monkeypatch):
    monkeypatch.setattr(sys.modules[__name__], "_FAULT_DIR", str(tmp_path))
    return tmp_path


def slim_view(result):
    return (result.workload, result.design, result.cycles,
            result.instructions, result.requests, result.counters)


class TestMemoKeyIncludesConfig:
    def test_mutating_config_re_simulates(self):
        # Regression: the memo key used to omit the config, so mutating
        # cache.config silently served results for the *old* SoC.
        cache = ResultCache(scale=TINY)
        before = cache.run("kmeans", BASELINE_512)
        cache.config = dataclasses.replace(cache.config, dram_latency=1600.0)
        after = cache.run("kmeans", BASELINE_512)
        assert cache.simulations_run == 2
        assert after is not before
        assert after.cycles > before.cycles  # 10x DRAM latency must show

    def test_same_config_still_memoizes(self):
        cache = ResultCache(scale=TINY)
        a = cache.run("kmeans", BASELINE_512)
        cache.config = dataclasses.replace(cache.config)  # equal content
        assert cache.run("kmeans", BASELINE_512) is a
        assert cache.simulations_run == 1


class TestRunManyDeterminism:
    def test_jobs2_matches_serial_counter_for_counter(self):
        serial = ResultCache(scale=TINY)
        serial_results = [serial.run(w, d) for w, d in POINTS]

        parallel = ResultCache(scale=TINY)
        parallel_results = parallel.run_many(POINTS, jobs=2)

        assert parallel.simulations_run == len(POINTS)
        for ser, par in zip(serial_results, parallel_results):
            assert slim_view(ser) == slim_view(par)
            if ser.iommu_rate is None:
                assert par.iommu_rate is None
            else:
                assert ser.iommu_rate.samples == par.iommu_rate.samples

    def test_run_many_memoizes_and_orders(self):
        cache = ResultCache(scale=TINY)
        results = cache.run_many(POINTS, jobs=2)
        assert [r.workload for r in results] == [w for w, _ in POINTS]
        assert [r.design for r in results] == [d.name for _, d in POINTS]
        # Everything is memoized: a rerun simulates nothing new.
        again = cache.run_many(POINTS, jobs=2)
        assert cache.simulations_run == len(POINTS)
        assert [a is b for a, b in zip(results, again)] == [True] * len(POINTS)

    def test_run_many_deduplicates_points(self):
        cache = ResultCache(scale=TINY)
        results = cache.run_many(
            [("kmeans", IDEAL_MMU), ("kmeans", IDEAL_MMU)], jobs=2)
        assert cache.simulations_run == 1
        assert results[0] is results[1]

    def test_run_many_serial_path_matches_run(self):
        cache = ResultCache(scale=TINY)
        (only,) = cache.run_many([("kmeans", IDEAL_MMU)], jobs=4)
        assert only is cache.run("kmeans", IDEAL_MMU)

    def test_parallel_metrics_merge_matches_serial(self):
        serial = ResultCache(scale=TINY, obs=Observability())
        for w, d in POINTS:
            serial.run(w, d)
        parallel = ResultCache(scale=TINY, obs=Observability())
        parallel.run_many(POINTS, jobs=2)
        assert (parallel.obs.metrics.counters.as_dict()
                == serial.obs.metrics.counters.as_dict())
        ser_hists = serial.obs.metrics.histograms()
        par_hists = parallel.obs.metrics.histograms()
        assert set(ser_hists) == set(par_hists)
        for name, ser_hist in ser_hists.items():
            par_hist = par_hists[name]
            assert ser_hist.count == par_hist.count, name
            assert (ser_hist.min, ser_hist.max) == (par_hist.min, par_hist.max)

    def test_run_designs_funnels_through_run_many(self):
        cache = ResultCache(scale=TINY, jobs=2)
        results = cache.run_designs("kmeans", DESIGNS)
        assert set(results) == {d.name for d in DESIGNS}
        assert cache.simulations_run == len(DESIGNS)
        assert results[IDEAL_MMU.name] is cache.run("kmeans", IDEAL_MMU)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(scale=TINY).run_many(POINTS, jobs=0)


class TestDiskCache:
    def test_warm_figure_rerun_simulates_nothing(self, tmp_path):
        cold = ResultCache(scale=TINY, cache_dir=str(tmp_path))
        fig4.run(cold, workloads=list(WORKLOADS))
        assert cold.simulations_run > 0

        warm = ResultCache(scale=TINY, cache_dir=str(tmp_path))
        result = fig4.run(warm, workloads=list(WORKLOADS))
        assert warm.simulations_run == 0  # every point served from disk
        assert result.average("IDEAL MMU") == 1.0

    def test_parallel_runs_populate_the_disk_cache(self, tmp_path):
        cold = ResultCache(scale=TINY, cache_dir=str(tmp_path), jobs=2)
        cold.run_many(POINTS)
        warm = ResultCache(scale=TINY, cache_dir=str(tmp_path), jobs=2)
        results = warm.run_many(POINTS)
        assert warm.simulations_run == 0
        for ser, cached in zip(cold.run_many(POINTS), results):
            assert slim_view(ser) == slim_view(cached)

    def test_fingerprint_changes_with_every_component(self):
        base = ResultCache(scale=TINY)
        fp = point_fingerprint("kmeans", TINY, BASELINE_512, False, base.config)
        other_config = dataclasses.replace(base.config, dram_latency=999.0)
        assert fp != point_fingerprint(
            "pagerank", TINY, BASELINE_512, False, base.config)
        assert fp != point_fingerprint(
            "kmeans", 2 * TINY, BASELINE_512, False, base.config)
        assert fp != point_fingerprint(
            "kmeans", TINY, BASELINE_16K, False, base.config)
        assert fp != point_fingerprint(
            "kmeans", TINY, BASELINE_512, True, base.config)
        assert fp != point_fingerprint(
            "kmeans", TINY, BASELINE_512, False, other_config)

    def test_config_mutation_misses_the_disk_cache(self, tmp_path):
        cache = ResultCache(scale=TINY, cache_dir=str(tmp_path))
        cache.run("kmeans", BASELINE_512)
        stale = ResultCache(scale=TINY, cache_dir=str(tmp_path))
        stale.config = dataclasses.replace(stale.config, dram_latency=1600.0)
        stale.run("kmeans", BASELINE_512)
        assert stale.simulations_run == 1  # fingerprint mismatch → re-simulate

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(scale=TINY, cache_dir=str(tmp_path))
        cache.run("kmeans", IDEAL_MMU)
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        rerun = ResultCache(scale=TINY, cache_dir=str(tmp_path))
        rerun.run("kmeans", IDEAL_MMU)
        assert rerun.simulations_run == 1

    def test_store_and_load_round_trip(self, tmp_path):
        cache = ResultCache(scale=TINY)
        result = cache.run("kmeans", IDEAL_MMU)
        disk = DiskCache(tmp_path)
        disk.store("abc123", result)
        assert len(disk) == 1
        loaded = disk.load("abc123")
        assert slim_view(loaded) == slim_view(result)
        assert loaded.hierarchy is None and loaded.metrics is None
        assert disk.load("missing") is None


class TestSlimResults:
    def test_pickle_drops_runtime_handles(self):
        cache = ResultCache(scale=TINY)
        result = cache.run("kmeans", BASELINE_512)
        assert result.hierarchy is not None
        clone = pickle.loads(pickle.dumps(result))
        assert clone.hierarchy is None
        assert clone.metrics is None
        assert slim_view(clone) == slim_view(result)
        assert clone == result

    def test_clear_releases_hierarchies(self):
        cache = ResultCache(scale=TINY)
        result = cache.run("kmeans", IDEAL_MMU)
        ref = weakref.ref(result.hierarchy)
        cache.clear()
        gc.collect()
        # Even though the slim result is still referenced, the hierarchy
        # (and every server/counter hanging off it) is gone.
        assert ref() is None
        assert result.hierarchy is None
        assert result.cycles > 0  # the slim record itself survives

    def test_need_hierarchy_re_simulates_slim_records(self, tmp_path):
        cache = ResultCache(scale=TINY, cache_dir=str(tmp_path))
        cache.run("kmeans", BASELINE_512)
        warm = ResultCache(scale=TINY, cache_dir=str(tmp_path))
        slim = warm.run("kmeans", BASELINE_512)
        assert warm.simulations_run == 0 and slim.hierarchy is None
        live = warm.run("kmeans", BASELINE_512, need_hierarchy=True)
        assert warm.simulations_run == 1
        assert live.hierarchy is not None
        assert slim_view(live) == slim_view(slim)


def _serial_reference():
    serial = ResultCache(scale=TINY)
    return [slim_view(serial.run(w, d)) for w, d in POINTS]


class TestFaultTolerantSweeps:
    def test_crashing_worker_is_retried_bit_identically(
            self, fault_dir, monkeypatch):
        # Every point's worker raises on its first attempt; the sweep
        # must retry each one and still match serial bit for bit.
        monkeypatch.setattr(common, "_simulate_point", _raise_once_point)
        cache = ResultCache(scale=TINY, retry_backoff=0.0)
        results = cache.run_many(POINTS, jobs=2)
        assert cache.simulations_run == len(POINTS)
        assert [slim_view(r) for r in results] == _serial_reference()

    def test_sigkilled_worker_is_retried_bit_identically(
            self, fault_dir, monkeypatch):
        monkeypatch.setattr(common, "_simulate_point", _sigkill_once_point)
        cache = ResultCache(scale=TINY, retry_backoff=0.0)
        results = cache.run_many(POINTS, jobs=2)
        assert [slim_view(r) for r in results] == _serial_reference()

    def test_hung_worker_is_killed_and_retried(self, fault_dir, monkeypatch):
        monkeypatch.setattr(common, "_simulate_point", _hang_once_point)
        cache = ResultCache(scale=TINY, retry_backoff=0.0, point_timeout=10.0)
        start = time.monotonic()
        results = cache.run_many(POINTS, jobs=2)
        assert time.monotonic() - start < 300  # nowhere near the 600s hang
        assert [slim_view(r) for r in results] == _serial_reference()

    def test_exhausted_retries_raise_sweep_error(self, monkeypatch):
        monkeypatch.setattr(common, "_simulate_point", _always_fail_point)
        cache = ResultCache(scale=TINY, retry_backoff=0.0, point_retries=1)
        with pytest.raises(SweepError) as excinfo:
            cache.run_many(POINTS, jobs=2)
        failures = excinfo.value.failures
        assert all(isinstance(f, PointFailure) for f in failures)
        assert all(f.attempts == 2 for f in failures)  # 1 try + 1 retry
        assert "injected permanent worker crash" in str(excinfo.value)


class TestCheckpointResume:
    def test_resume_skips_completed_points(self, tmp_path):
        ckpt = str(tmp_path / "sweep.ckpt")
        first = ResultCache(scale=TINY, checkpoint=ckpt)
        first.run_many(POINTS[:2], jobs=2)
        assert first.simulations_run == 2

        resumed = ResultCache(scale=TINY, checkpoint=ckpt)
        results = resumed.run_many(POINTS, jobs=2)
        assert resumed.simulations_run == len(POINTS) - 2
        assert [slim_view(r) for r in results] == _serial_reference()

    def test_parallel_sweep_checkpoints_every_point(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        cache = ResultCache(scale=TINY, checkpoint=str(ckpt))
        cache.run_many(POINTS, jobs=2)
        assert len(CheckpointStore(ckpt).load()) == len(POINTS)

    def test_killed_sweep_resumes_with_zero_lost_points(self, tmp_path):
        # A real SIGKILL mid-sweep: the child runs a serial sweep and
        # shoots itself after two points have been durably checkpointed.
        ckpt = tmp_path / "sweep.ckpt"
        script = f"""
import os, signal
from repro.experiments.common import ResultCache
from repro.robustness.checkpoint import CheckpointStore
import tests.test_parallel as tp

orig = CheckpointStore.append
def append_then_die(self, *args, **kwargs):
    orig(self, *args, **kwargs)
    if self.appended >= 2:
        os.kill(os.getpid(), signal.SIGKILL)
CheckpointStore.append = append_then_die

cache = ResultCache(scale={TINY!r}, checkpoint={str(ckpt)!r})
cache.run_many(tp.POINTS, jobs=1)
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(__file__).resolve().parents[1] / "src"),
             str(Path(__file__).resolve().parents[1]),
             env.get("PYTHONPATH", "")])
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert len(CheckpointStore(ckpt).load()) == 2

        resumed = ResultCache(scale=TINY, checkpoint=str(ckpt))
        results = resumed.run_many(POINTS, jobs=2)
        assert resumed.simulations_run == len(POINTS) - 2
        assert [slim_view(r) for r in results] == _serial_reference()

    def test_disk_cache_hits_are_checkpointed_too(self, tmp_path):
        # Points served from the disk cache still land in the checkpoint,
        # so a later resume without the disk cache loses nothing.
        cold = ResultCache(scale=TINY, cache_dir=str(tmp_path / "cache"))
        cold.run_many(POINTS[:2], jobs=2)
        ckpt = tmp_path / "sweep.ckpt"
        warm = ResultCache(scale=TINY, cache_dir=str(tmp_path / "cache"),
                           checkpoint=str(ckpt))
        warm.run_many(POINTS[:2], jobs=2)
        assert warm.simulations_run == 0
        assert len(CheckpointStore(ckpt).load()) == 2
