"""Tests for the baseline physical hierarchy and the IDEAL MMU."""

import pytest

from repro.gpu.coalescer import CoalescedRequest
from repro.memsys.address_space import AddressSpace
from repro.memsys.addressing import line_address
from repro.memsys.permissions import PageFault, PermissionFault, Permissions
from repro.system.physical_hierarchy import PhysicalHierarchy


@pytest.fixture
def space():
    return AddressSpace(asid=0)


def ph(small_config, space, **kw):
    return PhysicalHierarchy(small_config, {0: space.page_table}, **kw)


def read_req(va):
    return CoalescedRequest(line_addr=line_address(va), is_write=False, n_lanes=1)


def write_req(va):
    return CoalescedRequest(line_addr=line_address(va), is_write=True, n_lanes=1)


class TestTranslation:
    def test_tlb_miss_pays_iommu_round_trip(self, small_config, space):
        h = ph(small_config, space)
        m = space.mmap(1)
        t = h.access(0, read_req(m.base_va), now=0.0)
        assert t > 2 * small_config.interconnect.gpu_to_iommu
        assert h.counters["tlb.misses"] == 1
        assert h.iommu.counters["iommu.accesses"] == 1

    def test_tlb_hit_is_cheap(self, small_config, space):
        h = ph(small_config, space)
        m = space.mmap(1)
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        t2 = h.access(0, read_req(m.base_va), now=t1)
        assert t2 - t1 == small_config.per_cu_tlb_latency + small_config.l1_latency
        assert h.iommu.counters["iommu.accesses"] == 1

    def test_per_cu_tlbs_are_private(self, small_config, space):
        h = ph(small_config, space)
        m = space.mmap(1)
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        h.access(1, read_req(m.base_va), now=t1)
        assert h.counters["tlb.misses"] == 2  # CU1 misses independently

    def test_ideal_mmu_translation_is_free(self, small_config, space):
        h = ph(small_config, space, ideal=True)
        m = space.mmap(1)
        t = h.access(0, read_req(m.base_va), now=0.0)
        # Only TLB + cache + memory latency: no IOMMU round trip.
        assert h.iommu.counters["iommu.accesses"] == 0
        mem_path = (small_config.per_cu_tlb_latency + small_config.l1_latency
                    + 3 * small_config.interconnect.l1_to_l2
                    + small_config.l2_latency + small_config.dram_latency + 2)
        assert t <= mem_path

    def test_ideal_mmu_has_infinite_tlbs(self, small_config, space):
        h = ph(small_config, space, ideal=True)
        m = space.mmap(64)  # far beyond the 8-entry small-config TLB
        t = 0.0
        for i in range(64):
            t = h.access(0, read_req(m.base_va + i * 4096), now=t)
        for i in range(64):
            t = h.access(0, read_req(m.base_va + i * 4096), now=t)
        # Second sweep: all TLB hits.
        assert h.per_cu_tlbs[0].misses == 64

    def test_small_tlb_thrashes(self, small_config, space):
        h = ph(small_config, space)  # 8-entry TLBs
        m = space.mmap(16)
        t = 0.0
        for _sweep in range(2):
            for i in range(16):
                t = h.access(0, read_req(m.base_va + i * 4096), now=t)
        assert h.per_cu_tlb_miss_ratio() == 1.0  # LRU thrash

    def test_permission_fault(self, small_config, space):
        h = ph(small_config, space)
        m = space.mmap(1, permissions=Permissions.READ_ONLY)
        with pytest.raises(PermissionFault):
            h.access(0, write_req(m.base_va), now=0.0)

    def test_page_fault(self, small_config, space):
        h = ph(small_config, space)
        with pytest.raises(PageFault):
            h.access(0, read_req(0xBAD0_0000_0000), now=0.0)


class TestFigure2Classification:
    def test_miss_with_data_in_l1(self, small_config, space):
        h = ph(small_config, space)
        m = space.mmap(16)
        t = h.access(0, read_req(m.base_va), now=0.0)  # fills L1 + L2
        # Thrash the 8-entry TLB so the page's entry is evicted; vary
        # the in-page offset so the fills spread over L1 sets and the
        # original line survives.
        for i in range(1, 16):
            t = h.access(0, read_req(m.base_va + i * 4096 + (i % 8) * 128), now=t)
        # ...then touch the still-cached line: TLB miss, L1 hit.
        h.access(0, read_req(m.base_va), now=t)
        assert h.counters["tlb.miss_l1_hit"] == 1

    def test_miss_with_data_in_l2_only(self, small_config, space):
        h = ph(small_config, space)
        m = space.mmap(16)
        # CU1 fills the shared L2; CU0's TLB and L1 are cold.
        t = h.access(1, read_req(m.base_va), now=0.0)
        h.access(0, read_req(m.base_va), now=t)
        assert h.counters["tlb.miss_l2_hit"] == 1

    def test_miss_with_data_nowhere(self, small_config, space):
        h = ph(small_config, space)
        m = space.mmap(1)
        h.access(0, read_req(m.base_va), now=0.0)
        assert h.counters["tlb.miss_l2_miss"] == 1

    def test_classification_partitions_misses(self, small_config, space):
        h = ph(small_config, space)
        m = space.mmap(24)
        t = 0.0
        for sweep in range(3):
            for i in range(24):
                t = h.access(0, read_req(m.base_va + i * 4096 + (sweep * 128) % 4096), now=t)
        total = (h.counters["tlb.miss_l1_hit"] + h.counters["tlb.miss_l2_hit"]
                 + h.counters["tlb.miss_l2_miss"])
        assert total == h.counters["tlb.misses"]


class TestWritePath:
    def test_write_through_no_allocate(self, small_config, space):
        h = ph(small_config, space)
        m = space.mmap(1)
        h.access(0, write_req(m.base_va), now=0.0)
        pa = space.translate(m.base_va)
        assert not h.l1s[0].contains(pa // 128)   # no L1 allocation
        assert h.l2.peek(pa // 128).dirty         # allocated dirty in L2

    def test_read_fill_then_write_hits_l1_but_stays_clean(self, small_config, space):
        h = ph(small_config, space)
        m = space.mmap(1)
        t = h.access(0, read_req(m.base_va), now=0.0)
        h.access(0, write_req(m.base_va), now=t)
        pa = space.translate(m.base_va)
        assert not h.l1s[0].peek(pa // 128).dirty

    def test_dirty_l2_eviction_writes_back(self, small_config, space):
        h = ph(small_config, space)
        # 64 KB L2 = 512 lines; write 600 distinct lines to force
        # dirty evictions.
        m = space.mmap(24)
        t = 0.0
        for i in range(600):
            va = m.base_va + (i * 128) % m.size_bytes
            t = h.access(0, write_req(va), now=t)
        assert h.counters["l2.writebacks"] > 0


class TestLifetimeTracking:
    def test_trackers_populated(self, small_config, space):
        h = ph(small_config, space, track_lifetimes=True)
        m = space.mmap(16)
        t = 0.0
        for _sweep in range(2):
            for i in range(16):
                t = h.access(0, read_req(m.base_va + i * 4096), now=t)
        h.finish(t)
        assert len(h.lifetimes["tlb"].residence_times) > 0
        assert len(h.lifetimes["l1"].residence_times) > 0
        assert len(h.lifetimes["l2"].residence_times) > 0

    def test_disabled_by_default(self, small_config, space):
        h = ph(small_config, space)
        assert h.lifetimes is None
