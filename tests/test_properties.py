"""Property-based tests (hypothesis) on core data-structure invariants."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fbt import ForwardBackwardTable
from repro.memsys.cache import Cache, CacheConfig
from repro.memsys.page_table import FrameAllocator, PageTable
from repro.memsys.permissions import Permissions, ReadWriteSynonymFault
from repro.memsys.tlb import TLB
from repro.workloads.trace import MemoryInstruction
from repro.gpu.coalescer import Coalescer

# ---------------------------------------------------------------------------
# Cache vs a reference LRU model
# ---------------------------------------------------------------------------

cache_ops = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "insert", "invalidate"]),
        st.integers(min_value=0, max_value=63),
    ),
    max_size=200,
)


class ReferenceLRU:
    """A trivially-correct set-associative LRU model."""

    def __init__(self, n_sets, assoc):
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets = [OrderedDict() for _ in range(n_sets)]

    def lookup(self, line):
        s = self.sets[line % self.n_sets]
        if line in s:
            s.move_to_end(line)
            return True
        return False

    def insert(self, line):
        s = self.sets[line % self.n_sets]
        if line in s:
            s.move_to_end(line)
            return
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[line] = True

    def invalidate(self, line):
        self.sets[line % self.n_sets].pop(line, None)

    def resident(self):
        return {line for s in self.sets for line in s}


@given(cache_ops)
@settings(max_examples=200, deadline=None)
def test_cache_matches_reference_lru(ops):
    cache = Cache(CacheConfig(size_bytes=4 * 4 * 128, line_size=128,
                              associativity=4))  # 4 sets × 4 ways
    ref = ReferenceLRU(n_sets=4, assoc=4)
    for op, line in ops:
        if op == "lookup":
            assert (cache.lookup(line) is not None) == ref.lookup(line)
        elif op == "insert":
            cache.insert(line)
            ref.insert(line)
        else:
            cache.invalidate_line(line)
            ref.invalidate(line)
    assert {l.line_addr for l in cache.resident_lines()} == ref.resident()


@given(cache_ops)
@settings(max_examples=100, deadline=None)
def test_cache_page_counts_consistent(ops):
    cache = Cache(CacheConfig(size_bytes=4 * 4 * 128, line_size=128,
                              associativity=4))
    for op, line in ops:
        if op == "insert":
            cache.insert(line, page=line // 8)
        elif op == "invalidate":
            cache.invalidate_line(line)
        else:
            cache.lookup(line)
    # The page index always agrees with actual residency.
    from collections import Counter
    actual = Counter(l.page for l in cache.resident_lines() if l.page is not None)
    assert dict(actual) == cache.resident_pages()


# ---------------------------------------------------------------------------
# TLB never exceeds capacity; hits+misses == accesses
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=30), max_size=300),
       st.integers(min_value=1, max_value=16))
@settings(max_examples=100, deadline=None)
def test_tlb_capacity_and_accounting(vpns, capacity):
    tlb = TLB(capacity=capacity)
    for vpn in vpns:
        if tlb.lookup(vpn) is None:
            tlb.insert(vpn, vpn + 1000)
        assert len(tlb) <= capacity
    assert tlb.hits + tlb.misses == len(vpns)
    # Every resident translation is correct.
    for vpn in list(vpns):
        entry = tlb.lookup(vpn)
        if entry is not None:
            assert entry.ppn == vpn + 1000


# ---------------------------------------------------------------------------
# Page table: mapping then walking is the identity
# ---------------------------------------------------------------------------

@given(st.dictionaries(st.integers(min_value=0, max_value=2 ** 36 - 1),
                       st.integers(min_value=0, max_value=2 ** 24 - 1),
                       max_size=50))
@settings(max_examples=100, deadline=None)
def test_page_table_roundtrip(mappings):
    pt = PageTable(FrameAllocator())
    for vpn, ppn in mappings.items():
        pt.map(vpn, ppn)
    for vpn, ppn in mappings.items():
        walk = pt.walk(vpn)
        assert walk.ppn == ppn
        assert len(walk.node_addresses) == 4
        assert pt.lookup(vpn) == (ppn, Permissions.READ_WRITE)
    assert pt.n_mappings == len(mappings)


# ---------------------------------------------------------------------------
# Coalescer: lane-preserving, line-deduplicating
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=2 ** 20), min_size=1,
                max_size=32))
@settings(max_examples=200, deadline=None)
def test_coalescer_partitions_lanes(addresses):
    reqs = Coalescer(line_size=128).coalesce(addresses)
    # Every lane lands in exactly one request...
    assert sum(r.n_lanes for r in reqs) == len(addresses)
    # ...request line addresses are unique and cover exactly the lines.
    lines = [r.line_addr for r in reqs]
    assert len(lines) == len(set(lines))
    assert set(lines) == {a // 128 for a in addresses}
    # MemoryInstruction agrees with the coalescer on distinct lines.
    inst = MemoryInstruction(addresses=tuple(addresses))
    assert set(inst.lines(128)) == set(lines)


# ---------------------------------------------------------------------------
# FBT invariants under random access streams
# ---------------------------------------------------------------------------

fbt_accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),   # vpn
        st.integers(min_value=0, max_value=7),    # ppn
        st.integers(min_value=0, max_value=31),   # line index
        st.booleans(),                            # write
    ),
    max_size=150,
)


@given(fbt_accesses)
@settings(max_examples=150, deadline=None)
def test_fbt_ft_bt_bijection(accesses):
    fbt = ForwardBackwardTable(n_entries=16, associativity=2,
                               fault_on_rw_synonym=False)
    for vpn, ppn, line_index, is_write in accesses:
        check = fbt.check_access(0, vpn, ppn, Permissions.READ_WRITE,
                                 line_index, is_write)
        entry = check.entry
        if check.status != "synonym":
            fbt.note_l2_fill(ppn, line_index)
        # Invariant: the FT maps each live entry's leading page back to it.
        assert fbt.ft.lookup(entry.leading_asid, entry.leading_vpn) is entry

    # Global invariants: FT and BT pair one-to-one; leading pages unique.
    entries = fbt.bt.entries()
    assert len(fbt.ft) == len(entries)
    leading = [(e.leading_asid, e.leading_vpn) for e in entries]
    assert len(set(leading)) == len(leading)
    for e in entries:
        assert fbt.ft.lookup(e.leading_asid, e.leading_vpn) is e
        assert fbt.forward_translate(e.leading_asid, e.leading_vpn)[0] == e.ppn


@given(fbt_accesses)
@settings(max_examples=100, deadline=None)
def test_fbt_rw_synonym_fault_conditions(accesses):
    """With faulting on, a raised fault always involves a true synonym."""
    fbt = ForwardBackwardTable(n_entries=64, associativity=4)
    leading_of = {}
    for vpn, ppn, line_index, is_write in accesses:
        try:
            fbt.check_access(0, vpn, ppn, Permissions.READ_WRITE,
                             line_index, is_write)
        except ReadWriteSynonymFault as fault:
            assert fault.ppn == ppn
            assert fault.vpn == vpn
            assert fault.leading_vpn != vpn
            continue
        entry = fbt.bt.peek(ppn)
        if entry is not None:
            leading_of[ppn] = entry.leading_vpn


# ---------------------------------------------------------------------------
# BT bit vector == L2 contents, end to end through the hierarchy
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),   # cu
                          st.integers(min_value=0, max_value=11),  # page
                          st.integers(min_value=0, max_value=31),  # line
                          st.booleans()),                          # write
                max_size=120))
@settings(max_examples=60, deadline=None)
def test_vc_bit_vectors_track_l2_exactly(accesses):
    from repro.core.virtual_hierarchy import VirtualCacheHierarchy, line_key
    from repro.gpu.coalescer import CoalescedRequest
    from repro.memsys.address_space import AddressSpace
    from repro.memsys.iommu import IOMMUConfig
    from repro.system.config import SoCConfig

    config = SoCConfig(
        n_cus=4,
        l1=CacheConfig(size_bytes=2 * 1024, line_size=128, associativity=2,
                       write_back=False, write_allocate=False),
        l2=CacheConfig(size_bytes=16 * 1024, line_size=128, associativity=4,
                       n_banks=2, write_back=True, write_allocate=True),
        per_cu_tlb_entries=None,
        iommu=IOMMUConfig(shared_tlb_entries=16),
        fbt_entries=32,
        fbt_associativity=4,
    )
    space = AddressSpace(asid=0)
    m = space.mmap(12)
    h = VirtualCacheHierarchy(config, {0: space.page_table})
    t = 0.0
    for cu, page, line, is_write in accesses:
        va = m.base_va + page * 4096 + line * 128
        t = h.access(cu, CoalescedRequest(va // 128, is_write, 1), t) + 1

    # For every BT entry, the bit vector equals the L2's actual contents.
    for entry in h.fbt.bt.entries():
        for idx in range(32):
            key = line_key(entry.leading_asid,
                           entry.leading_vpn * 32 + idx)
            assert entry.line_cached(idx) == h.l2.contains(key), (
                f"page {entry.leading_vpn:#x} line {idx}"
            )
