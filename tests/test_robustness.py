"""Tests for the robustness layer (ISSUE 4).

Covers the fault-injection plan/injector, the structural invariant
auditor (green on healthy runs, trips on planted corruption), the
crash-safe checkpoint store, trace validation at deserialization, the
self-verifying disk-cache envelope with quarantine, the new OS-event
paths (remap/unmap/page-in, hierarchy-wide shootdowns), and the chaos
CLI driver.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.experiments import chaos
from repro.experiments.disk_cache import QUARANTINE_DIR, DiskCache
from repro.memsys.address_space import AddressSpace
from repro.memsys.addressing import page_number
from repro.memsys.permissions import PageFault, Permissions
from repro.robustness.checkpoint import CheckpointStore
from repro.robustness.fault_plan import KINDS, FaultInjector, FaultPlan
from repro.robustness.invariants import (
    InvariantViolation,
    check_hierarchy,
)
from repro.system.config import SoCConfig
from repro.system.designs import (
    BASELINE_512,
    L1_ONLY_VC_32,
    VC_WITH_OPT,
    VC_WITHOUT_OPT,
)
from repro.system.run import simulate
from repro.workloads import registry
from repro.workloads.serialization import load_trace, save_trace
from repro.workloads.trace import (
    MemoryInstruction,
    Trace,
    TraceValidationError,
    validate_trace,
)

TINY = 0.05


def tiny_trace(name="bfs"):
    return registry.load_fresh(name, scale=TINY)


def run_clean(design, workload="bfs"):
    """Simulate one healthy point and return its (live) hierarchy."""
    trace = tiny_trace(workload)
    config = SoCConfig()
    hierarchy = design.build(config, {0: trace.address_space.page_table})
    simulate(trace, hierarchy, design.soc_config(config), design=design.name)
    return hierarchy


class TestFaultPlan:
    def test_same_inputs_same_plan(self):
        trace = tiny_trace()
        a = FaultPlan.for_trace(trace, 0.01, seed=7)
        b = FaultPlan.for_trace(trace, 0.01, seed=7)
        assert len(a) > 0
        assert a.events == b.events

    def test_seed_and_rate_change_the_plan(self):
        trace = tiny_trace()
        base = FaultPlan.for_trace(trace, 0.01, seed=0)
        assert base.events != FaultPlan.for_trace(trace, 0.01, seed=1).events
        assert len(FaultPlan.for_trace(trace, 0.05, seed=0)) > len(base)

    def test_zero_rate_is_empty(self):
        assert len(FaultPlan.for_trace(tiny_trace(), 0.0)) == 0

    def test_invalid_inputs_rejected(self):
        trace = tiny_trace()
        with pytest.raises(ValueError):
            FaultPlan.for_trace(trace, -0.1)
        with pytest.raises(ValueError):
            FaultPlan.for_trace(trace, 0.01, kinds=("shootdown", "meteor"))

    def test_events_are_sorted_and_typed(self):
        plan = FaultPlan.for_trace(tiny_trace(), 0.02, seed=3)
        indices = [e.index for e in plan.events]
        assert indices == sorted(indices)
        assert set(plan.counts_by_kind()) <= set(KINDS)


class TestInvariantAuditor:
    @pytest.mark.parametrize(
        "design", [VC_WITH_OPT, VC_WITHOUT_OPT, L1_ONLY_VC_32, BASELINE_512],
        ids=lambda d: d.name)
    def test_healthy_run_is_green(self, design):
        check_hierarchy(run_clean(design), "after clean run")

    @pytest.mark.parametrize(
        "design", [VC_WITH_OPT, VC_WITHOUT_OPT], ids=lambda d: d.name)
    def test_tampered_fbt_is_caught(self, design):
        hierarchy = run_clean(design)
        _, entry = next(iter(hierarchy.fbt.ft.items()))
        if entry.tracking == "bitvector":
            entry.line_bits ^= 1
        else:
            entry.line_count += 7
        with pytest.raises(InvariantViolation) as excinfo:
            check_hierarchy(hierarchy, "tampered")
        assert "tampered" in str(excinfo.value)

    def test_tampered_asdt_is_caught(self):
        hierarchy = run_clean(L1_ONLY_VC_32)
        entry = next(iter(hierarchy.asdt.entries()))
        entry.resident_lines += 1
        with pytest.raises(InvariantViolation):
            check_hierarchy(hierarchy, "tampered")

    def test_tampered_filter_is_caught(self):
        hierarchy = run_clean(VC_WITH_OPT)
        fbt_filter = hierarchy.filters[0]
        key = next(iter(fbt_filter.snapshot()), None)
        if key is None:  # count a page the filter never saw
            fbt_filter._counts[(0, 12345)] = 3
        else:
            fbt_filter._counts[key] += 1
        with pytest.raises(InvariantViolation):
            check_hierarchy(hierarchy, "tampered")

    def test_violation_carries_a_diagnostic_dump(self):
        hierarchy = run_clean(VC_WITH_OPT)
        _, entry = next(iter(hierarchy.fbt.ft.items()))
        entry.line_bits ^= 1
        with pytest.raises(InvariantViolation) as excinfo:
            check_hierarchy(hierarchy, "tampered")
        message = str(excinfo.value)
        assert "state: " in message
        assert "FBT entries=" in message  # fbt.state_summary() made it in


class TestChaosEndToEnd:
    def test_all_designs_green_under_fault_injection(self):
        report = chaos.run(workloads=("bfs",), rates=(0.01,), seed=0,
                           scale=TINY, invariant_interval=64)
        assert len(report.points) == len(chaos.DESIGNS)
        for point in report.points:
            assert point.ok, point.violation
            assert point.n_events > 0
            assert point.events_applied == point.n_events
            assert point.audits > 1  # periodic audits fired, not just final
        assert "all points green" in report.render()

    def test_chaos_is_deterministic(self):
        kwargs = dict(workloads=("bfs",), rates=(0.005,), seed=42, scale=TINY)
        a = chaos.run(**kwargs)
        b = chaos.run(**kwargs)
        assert [(p.cycles, p.events_applied) for p in a.points] == \
            [(p.cycles, p.events_applied) for p in b.points]

    def test_injector_handles_unmap_and_downgrade_faults(self):
        trace = tiny_trace("kmeans")
        config = SoCConfig()
        design = VC_WITH_OPT
        hierarchy = design.build(config, {0: trace.address_space.page_table})
        plan = FaultPlan.for_trace(trace, 0.05, seed=1)
        injector = FaultInjector(hierarchy, plan, trace.address_space)
        simulate(trace, injector, design.soc_config(config),
                 design=design.name, check_invariants=True,
                 invariant_interval=128)
        counts = injector.counters.as_dict()
        assert counts["chaos.events"] == len(plan)
        # A 5% rate over a whole trace reliably lands every fault kind.
        assert counts.get("chaos.unmaps", 0) > 0
        assert counts.get("chaos.page_ins", 0) > 0
        assert counts.get("chaos.permission_downgrades", 0) > 0


class TestCheckpointStore:
    def test_round_trip_and_later_wins(self, tmp_path):
        store = CheckpointStore(tmp_path / "sweep.ckpt")
        store.append("fp-a", {"x": 1})
        store.append("fp-b", [1, 2, 3])
        store.append("fp-a", {"x": 2})  # rewrite: later record wins
        loaded = CheckpointStore(tmp_path / "sweep.ckpt").load()
        assert loaded == {"fp-a": {"x": 2}, "fp-b": [1, 2, 3]}

    def test_missing_file_loads_empty(self, tmp_path):
        assert CheckpointStore(tmp_path / "absent.ckpt").load() == {}

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        store = CheckpointStore(path)
        store.append("fp-a", 1)
        store.append("fp-b", 2)
        intact = path.stat().st_size
        with open(path, "ab") as fh:  # a kill mid-append leaves half a record
            fh.write(b"RPCK\xff\xff")
        reader = CheckpointStore(path)
        assert reader.load() == {"fp-a": 1, "fp-b": 2}
        assert reader.repaired_bytes == 6
        assert path.stat().st_size == intact  # tail repaired in place
        store.append("fp-c", 3)  # appends after repair stay parseable
        assert CheckpointStore(path).load() == {"fp-a": 1, "fp-b": 2, "fp-c": 3}

    def test_corrupt_payload_stops_the_scan(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        store = CheckpointStore(path)
        store.append("fp-a", 1)
        good = path.stat().st_size
        store.append("fp-b", 2)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a byte inside the second payload
        path.write_bytes(bytes(data))
        assert CheckpointStore(path).load() == {"fp-a": 1}
        assert path.stat().st_size == good


class TestTraceValidation:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceValidationError, match="empty"):
            validate_trace(Trace(name="t", per_cu=[[]]))

    def test_negative_address_rejected(self):
        trace = Trace(name="t", per_cu=[[MemoryInstruction(addresses=(-4,))]])
        with pytest.raises(TraceValidationError, match="negative"):
            validate_trace(trace)

    def test_non_integer_address_rejected(self):
        trace = Trace(name="t", per_cu=[[MemoryInstruction(addresses=(1.5,))]])
        with pytest.raises(TraceValidationError, match="non-integer"):
            validate_trace(trace)

    def test_valid_trace_passes_through(self):
        trace = tiny_trace()
        assert validate_trace(trace) is trace

    def test_round_trip_still_loads(self, tmp_path):
        trace = tiny_trace()
        path = save_trace(trace, tmp_path / "t.npz")
        assert load_trace(path).n_instructions == trace.n_instructions

    @staticmethod
    def _rewrite(path, out, **overrides):
        """Copy a saved trace, replacing the named arrays."""
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays.update(overrides)
        np.savez_compressed(out, **arrays)
        return out

    def test_truncated_lane_array_rejected(self, tmp_path):
        path = save_trace(tiny_trace(), tmp_path / "t.npz")
        bad = self._rewrite(path, tmp_path / "bad.npz",
                            lanes=np.asarray([], dtype=np.int64))
        with pytest.raises(TraceValidationError, match="truncated"):
            load_trace(bad)

    def test_unknown_access_kind_rejected(self, tmp_path):
        path = save_trace(tiny_trace(), tmp_path / "t.npz")
        with np.load(path) as data:
            flags = data["flags"].copy()
        flags[0] = 0x7F
        bad = self._rewrite(path, tmp_path / "bad.npz", flags=flags)
        with pytest.raises(TraceValidationError, match="unknown access kind"):
            load_trace(bad)

    def test_negative_lane_address_rejected(self, tmp_path):
        path = save_trace(tiny_trace(), tmp_path / "t.npz")
        with np.load(path) as data:
            lanes = data["lanes"].copy()
        lanes[0] = -8
        bad = self._rewrite(path, tmp_path / "bad.npz", lanes=lanes)
        with pytest.raises(TraceValidationError, match="negative"):
            load_trace(bad)

    def test_empty_file_rejected(self, tmp_path):
        path = save_trace(tiny_trace(), tmp_path / "t.npz")
        empty = np.asarray([], dtype=np.int32)
        bad = self._rewrite(path, tmp_path / "bad.npz",
                            cu_ids=empty, lane_counts=empty,
                            flags=np.asarray([], dtype=np.int8),
                            lanes=np.asarray([], dtype=np.int64))
        with pytest.raises(TraceValidationError, match="empty"):
            load_trace(bad)


class TestAddressSpaceEvents:
    def setup_method(self):
        self.space = AddressSpace(asid=0)
        self.mapping = self.space.mmap(4)
        self.vpn = page_number(self.mapping.base_va)

    def test_remap_moves_the_frame(self):
        before, perms = self.space.page_table.lookup(self.vpn)
        after = self.space.remap_page(self.vpn)
        assert after != before
        assert self.space.page_table.lookup(self.vpn) == (after, perms)

    def test_unmap_then_page_in(self):
        perms = self.space.unmap_page(self.vpn)
        assert perms == Permissions.READ_WRITE
        assert self.space.page_table.lookup(self.vpn) is None
        self.space.page_in(self.vpn, perms)
        assert self.space.page_table.lookup(self.vpn) is not None

    def test_remap_of_unmapped_page_faults(self):
        self.space.unmap_page(self.vpn)
        with pytest.raises(PageFault):
            self.space.remap_page(self.vpn)

    def test_large_pages_cannot_be_remapped(self):
        large = self.space.mmap(512, large_pages=True)
        with pytest.raises(ValueError):
            self.space.remap_page(page_number(large.base_va))


class TestShootdownPaths:
    def test_l1_only_shootdown_drops_the_page(self):
        hierarchy = run_clean(L1_ONLY_VC_32)
        entry = next(e for e in hierarchy.asdt.entries())
        asid, vpn = entry.leading_asid, entry.leading_vpn
        assert hierarchy.shootdown(asid, vpn) is True
        assert hierarchy.asdt.ppn_of_leading(asid, vpn) is None
        check_hierarchy(hierarchy, "after shootdown")

    def test_l1_only_shootdown_all_flushes_everything(self):
        hierarchy = run_clean(L1_ONLY_VC_32)
        assert len(hierarchy.asdt) > 0
        flushed = hierarchy.shootdown_all()
        assert flushed > 0
        assert len(hierarchy.asdt) == 0
        check_hierarchy(hierarchy, "after full shootdown")

    def test_physical_shootdown_drops_tlb_entries(self):
        hierarchy = run_clean(BASELINE_512)
        dropped = any(
            hierarchy.shootdown(0, key & ((1 << 52) - 1))
            for tlb in hierarchy.per_cu_tlbs
            for key in list(tlb._entries)[:1]
        )
        assert dropped is True
        check_hierarchy(hierarchy, "after shootdown")

    def test_virtual_shootdown_stays_consistent(self):
        hierarchy = run_clean(VC_WITH_OPT)
        (asid, vpn), _ = next(iter(hierarchy.fbt.ft.items()))
        assert hierarchy.shootdown(asid, vpn) is True
        check_hierarchy(hierarchy, "after shootdown")


class TestDiskCacheIntegrity:
    def _store_one(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.store("f" * 64, {"not": "checked here"})
        return disk

    def _result_entry(self, tmp_path):
        """A real stored entry for a real simulated result."""
        from repro.experiments.common import ResultCache

        cache = ResultCache(scale=TINY, cache_dir=str(tmp_path))
        cache.run("kmeans", BASELINE_512)
        (entry,) = tmp_path.glob("*.pkl")
        return entry

    def test_digest_mismatch_quarantines(self, tmp_path):
        entry = self._result_entry(tmp_path)
        with open(entry, "rb") as fh:
            envelope = pickle.load(fh)
        envelope["payload"] = envelope["payload"][:-4] + b"\x00\x00\x00\x00"
        entry.write_bytes(pickle.dumps(envelope))
        disk = DiskCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="digest mismatch"):
            assert disk.load(entry.stem) is None
        assert disk.quarantined == 1
        assert not entry.exists()
        assert (tmp_path / QUARANTINE_DIR / entry.name).exists()
        assert len(disk) == 0  # quarantined entries don't count

    def test_wrong_name_quarantines(self, tmp_path):
        entry = self._result_entry(tmp_path)
        renamed = tmp_path / ("0" * 64 + ".pkl")
        entry.rename(renamed)
        disk = DiskCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="fingerprint mismatch"):
            assert disk.load("0" * 64) is None
        assert (tmp_path / QUARANTINE_DIR / renamed.name).exists()

    def test_pre_envelope_schema_quarantines(self, tmp_path):
        entry = self._result_entry(tmp_path)
        entry.write_bytes(pickle.dumps({"schema": 1, "payload": b""}))
        disk = DiskCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="schema"):
            assert disk.load(entry.stem) is None

    def test_quarantined_point_is_recomputed(self, tmp_path):
        from repro.experiments.common import ResultCache

        entry = self._result_entry(tmp_path)
        entry.write_bytes(b"garbage")
        rerun = ResultCache(scale=TINY, cache_dir=str(tmp_path))
        with pytest.warns(RuntimeWarning):
            rerun.run("kmeans", BASELINE_512)
        assert rerun.simulations_run == 1
        assert len(list((tmp_path / QUARANTINE_DIR).iterdir())) == 1

    def test_store_oserror_is_counted_not_fatal(self, tmp_path, monkeypatch):
        disk = DiskCache(tmp_path)

        def explode(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr("repro.experiments.disk_cache.os.replace", explode)
        with pytest.warns(RuntimeWarning, match="write failed"):
            disk.store("a" * 64, 123)
        assert disk.store_errors == 1
        assert len(disk) == 0
        assert list(tmp_path.glob(".tmp-*")) == []  # temp file cleaned up

    def test_mkstemp_oserror_is_counted_not_fatal(self, tmp_path, monkeypatch):
        disk = DiskCache(tmp_path)

        def explode(*args, **kwargs):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr(
            "repro.experiments.disk_cache.tempfile.mkstemp", explode)
        with pytest.warns(RuntimeWarning, match="write failed"):
            disk.store("b" * 64, 123)
        assert disk.store_errors == 1


class TestChaosCli:
    def test_chaos_is_listed(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        assert "chaos" in capsys.readouterr().out.split()

    def test_chaos_runs_green(self, capsys):
        from repro.experiments.cli import main

        code = main(["chaos", "--scale", str(TINY), "--fault-rates", "0.005",
                     "--chaos-workloads", "bfs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all points green" in out

    def test_bad_fault_rates_exit_2(self, capsys):
        from repro.experiments.cli import main

        assert main(["chaos", "--fault-rates", "lots"]) == 2
        assert "--fault-rates" in capsys.readouterr().err

    def test_unknown_chaos_workload_exit_2(self, capsys):
        from repro.experiments.cli import main

        assert main(["chaos", "--chaos-workloads", "nope",
                     "--scale", str(TINY)]) == 2
        assert "nope" in capsys.readouterr().err

    def test_unwritable_cache_dir_exits_2_before_simulating(
            self, tmp_path, capsys):
        from repro.experiments.cli import main

        # A regular file can be neither entered nor created as a
        # directory — not even by root, unlike a chmod-0 directory.
        blocker = tmp_path / "blocker"
        blocker.write_text("occupied")
        assert main(["fig4", "--cache-dir", str(blocker)]) == 2
        err = capsys.readouterr().err
        assert "repro-experiment: error" in err
        assert "--cache-dir" in err


class TestChaosReportShape:
    def test_report_renders_violations(self):
        report = chaos.ChaosReport(points=[
            chaos.ChaosPoint(workload="bfs", design="X", rate=0.01,
                             n_events=3, events_applied=3, audits=0,
                             cycles=0.0, violation="boom at instruction 5"),
        ], seed=9)
        text = report.render()
        assert not report.ok
        assert "INVARIANT VIOLATION" in text
        assert "boom at instruction 5" in text
