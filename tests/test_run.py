"""Tests for the top-level simulation driver."""

import pytest

from repro.memsys.address_space import AddressSpace
from repro.system.designs import BASELINE_512, IDEAL_MMU, VC_WITH_OPT
from repro.system.run import simulate
from repro.workloads.trace import MemoryInstruction, Trace

from tests.conftest import make_trace


@pytest.fixture
def space():
    return AddressSpace(asid=0)


def sequential_trace(space, n_pages=8, accesses=64, n_cus=2, interval=4.0):
    m = space.mmap(n_pages)
    per_cu = []
    for cu in range(n_cus):
        stream = []
        for i in range(accesses):
            va = m.base_va + ((cu * 7919 + i * 128) % m.size_bytes)
            stream.append(MemoryInstruction(addresses=(va,)))
        per_cu.append(stream)
    return Trace(name="seq", per_cu=per_cu, address_space=space,
                 issue_interval=interval)


class TestSimulate:
    def test_all_requests_processed(self, small_config, space):
        trace = sequential_trace(space)
        h = IDEAL_MMU.build(small_config, {0: space.page_table})
        result = simulate(trace, h, small_config, design="IDEAL MMU")
        assert result.instructions == trace.n_instructions
        assert result.requests == 128
        assert result.cycles > 0

    def test_deterministic(self, small_config):
        results = []
        for _ in range(2):
            space = AddressSpace(asid=0)
            trace = sequential_trace(space)
            h = BASELINE_512.build(small_config, {0: space.page_table})
            results.append(simulate(trace, h, small_config).cycles)
        assert results[0] == results[1]

    def test_baseline_slower_than_ideal(self, small_config, space):
        trace = sequential_trace(space, n_pages=24, accesses=200)
        ideal = simulate(trace, IDEAL_MMU.build(small_config, {0: space.page_table}),
                         small_config)
        base = simulate(trace, BASELINE_512.build(small_config, {0: space.page_table}),
                        small_config)
        assert base.cycles > ideal.cycles
        assert base.relative_time(ideal) > 1.0
        assert base.speedup_over(ideal) < 1.0

    def test_scratchpad_instructions_do_not_touch_memory(self, small_config, space):
        space.mmap(1)
        stream = [MemoryInstruction(addresses=(0,), scratchpad=True)] * 50
        trace = Trace(name="scratch", per_cu=[stream], address_space=space,
                      issue_interval=4.0)
        h = BASELINE_512.build(small_config, {0: space.page_table})
        result = simulate(trace, h, small_config)
        assert result.requests == 0
        assert result.counters.get("tlb.accesses", 0) == 0
        assert result.cycles >= 49 * 4.0

    def test_issue_interval_paces_execution(self, small_config, space):
        fast = sequential_trace(space, interval=2.0)
        space2 = AddressSpace(asid=0)
        slow = sequential_trace(space2, interval=40.0)
        r_fast = simulate(fast, IDEAL_MMU.build(small_config, {0: space.page_table}),
                          small_config)
        r_slow = simulate(slow, IDEAL_MMU.build(small_config, {0: space2.page_table}),
                          small_config)
        assert r_slow.cycles > 2 * r_fast.cycles

    def test_max_instructions_per_cu(self, small_config, space):
        trace = sequential_trace(space, accesses=64)
        h = IDEAL_MMU.build(small_config, {0: space.page_table})
        result = simulate(trace, h, small_config, max_instructions_per_cu=10)
        assert result.instructions == 20  # 2 CUs × 10

    def test_counters_merged_from_components(self, small_config, space):
        trace = sequential_trace(space)
        h = BASELINE_512.build(small_config, {0: space.page_table})
        result = simulate(trace, h, small_config)
        assert "tlb.accesses" in result.counters
        assert "l1.hits" in result.counters
        assert "iommu.accesses" in result.counters
        assert result.iommu_rate is not None

    def test_divergent_instruction_issues_one_request_per_cycle(
            self, small_config, space):
        m = space.mmap(8)
        lanes = tuple(m.base_va + i * 4096 for i in range(8))
        trace = make_trace(space, [lanes], issue_interval=4.0)
        h = IDEAL_MMU.build(small_config, {0: space.page_table})
        result = simulate(trace, h, small_config)
        assert result.requests == 8
        # Eight requests at one per cycle: at least 7 cycles of issue.
        assert result.cycles >= 7.0


class TestSimulationResultMetrics:
    def test_tlb_miss_breakdown_fractions(self, small_config, space):
        trace = sequential_trace(space, n_pages=24, accesses=300)
        h = BASELINE_512.build(small_config, {0: space.page_table})
        result = simulate(trace, h, small_config)
        bd = result.tlb_miss_breakdown()
        assert bd["l1_hit"] + bd["l2_hit"] + bd["l2_miss"] == pytest.approx(1.0)

    def test_vc_filters_translations(self, small_config, space):
        # Page-level thrash (12 pages vs 8 TLB entries) with line-level
        # reuse (384 lines fit the 512-line L2): the regime where the
        # virtual hierarchy filters translations the TLB cannot.
        import random
        rng = random.Random(0)
        m = space.mmap(12)
        per_cu = []
        for _cu in range(2):
            per_cu.append([
                MemoryInstruction(addresses=(m.base_va + rng.randrange(384) * 128,))
                for _ in range(1000)
            ])
        trace = Trace(name="rand", per_cu=per_cu, address_space=space,
                      issue_interval=4.0)
        from repro.system.designs import MMUDesign
        tiny_tlb_baseline = MMUDesign(name="Baseline tiny TLBs",
                                      per_cu_tlb_entries=4, iommu_entries=512)
        base = simulate(trace,
                        tiny_tlb_baseline.build(small_config, {0: space.page_table}),
                        small_config)
        vc = simulate(trace, VC_WITH_OPT.build(small_config, {0: space.page_table}),
                      small_config)
        assert vc.counters["iommu.accesses"] < base.counters["tlb.misses"]

    def test_relative_time_validation(self, small_config, space):
        trace = sequential_trace(space)
        h = IDEAL_MMU.build(small_config, {0: space.page_table})
        r = simulate(trace, h, small_config)
        zero = type(r)(workload="x", design="y", cycles=0.0, instructions=0,
                       requests=0, counters={})
        with pytest.raises(ValueError):
            r.relative_time(zero)

    def test_wall_clock_recorded(self, small_config, space):
        trace = sequential_trace(space)
        h = IDEAL_MMU.build(small_config, {0: space.page_table})
        r = simulate(trace, h, small_config)
        assert r.wall_clock_seconds > 0.0
        assert r.metrics is None  # no observability attached


class TestSimulationResultEdgeCases:
    """Derived metrics on degenerate results (empty/zero-cycle runs)."""

    @staticmethod
    def empty_result(cycles=0.0, counters=None):
        from repro.system.run import SimulationResult

        return SimulationResult(workload="empty", design="none", cycles=cycles,
                                instructions=0, requests=0,
                                counters=counters or {})

    def test_zero_cycles_rate_metrics_are_zero(self):
        r = self.empty_result()
        assert r.iommu_accesses_per_cycle() == 0.0

    def test_zero_cycles_speedup_raises(self):
        r = self.empty_result()
        nonzero = self.empty_result(cycles=10.0)
        with pytest.raises(ValueError):
            r.speedup_over(nonzero)
        with pytest.raises(ValueError):
            nonzero.relative_time(r)

    def test_zero_accesses_miss_ratio_is_zero(self):
        r = self.empty_result(cycles=100.0)
        assert r.per_cu_tlb_miss_ratio() == 0.0
        # Misses counted but zero accesses must not divide by zero.
        r2 = self.empty_result(cycles=100.0, counters={"tlb.misses": 5})
        assert r2.per_cu_tlb_miss_ratio() == 0.0

    def test_empty_breakdown_sums_to_zero(self):
        bd = self.empty_result(cycles=100.0).tlb_miss_breakdown()
        assert bd == {"l1_hit": 0.0, "l2_hit": 0.0, "l2_miss": 0.0}

    def test_breakdown_with_misses_but_no_classification(self):
        r = self.empty_result(cycles=1.0, counters={"tlb.misses": 4,
                                                    "tlb.miss_l2_miss": 4})
        bd = r.tlb_miss_breakdown()
        assert bd["l2_miss"] == 1.0
        assert bd["l1_hit"] == bd["l2_hit"] == 0.0

    def test_nonzero_cycles_zero_accesses(self):
        r = self.empty_result(cycles=42.0)
        assert r.iommu_accesses_per_cycle() == 0.0
        assert r.relative_time(self.empty_result(cycles=42.0)) == 1.0
