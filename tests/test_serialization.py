"""Tests for trace save/load round-tripping."""

import pytest

from repro.system.designs import BASELINE_512
from repro.system.run import simulate
from repro.workloads.registry import load
from repro.workloads.serialization import load_trace, save_trace
from repro.workloads.synthetic import synonym_stress
from repro.workloads.trace import MemoryInstruction, Trace


class TestRoundTrip:
    def test_workload_trace_roundtrip(self, tmp_path):
        original = load("pagerank", scale=0.05)
        path = save_trace(original, tmp_path / "pagerank.npz")
        reloaded = load_trace(path)

        assert reloaded.name == original.name
        assert reloaded.n_instructions == original.n_instructions
        assert reloaded.issue_interval == original.issue_interval
        assert reloaded.metadata == original.metadata
        for a, b in zip(original.all_instructions(), reloaded.all_instructions()):
            assert a.addresses == b.addresses
            assert a.is_write == b.is_write
            assert a.scratchpad == b.scratchpad

    def test_address_space_replay_reproduces_translations(self, tmp_path):
        original = load("mis", scale=0.05)
        path = save_trace(original, tmp_path / "mis.npz")
        reloaded = load_trace(path)
        checked = 0
        for inst in original.all_instructions():
            if inst.scratchpad:
                continue
            for addr in inst.addresses[:2]:
                assert (original.address_space.translate(addr)
                        == reloaded.address_space.translate(addr))
                checked += 1
            if checked > 100:
                break
        assert checked > 0

    def test_synonym_mappings_survive(self, tmp_path):
        original = synonym_stress(n_pages=8, n_accesses=50, seed=9)
        path = save_trace(original, tmp_path / "syn.npz")
        reloaded = load_trace(path)
        orig_space, new_space = original.address_space, reloaded.address_space
        a = orig_space.mappings[0].base_va
        b = orig_space.mappings[1].base_va
        assert new_space.translate(a) == new_space.translate(b)

    def test_simulation_results_identical(self, small_config, tmp_path):
        import dataclasses
        config = dataclasses.replace(small_config, n_cus=16)
        original = load("kmeans", scale=0.05)
        path = save_trace(original, tmp_path / "km.npz")
        reloaded = load_trace(path)
        r1 = simulate(original, BASELINE_512.build(
            config, {0: original.address_space.page_table}), config)
        r2 = simulate(reloaded, BASELINE_512.build(
            config, {0: reloaded.address_space.page_table}), config)
        assert r1.cycles == r2.cycles
        assert r1.counters == r2.counters

    def test_cu_count_mismatch_is_a_clear_error(self, small_config, tmp_path):
        trace = load("kmeans", scale=0.05)  # 16 CU streams
        with pytest.raises(ValueError, match="CU streams"):
            simulate(trace, BASELINE_512.build(
                small_config, {0: trace.address_space.page_table}),
                small_config)

    def test_scratchpad_flags_preserved(self, tmp_path):
        original = load("nw", scale=0.05)
        path = save_trace(original, tmp_path / "nw.npz")
        reloaded = load_trace(path)
        assert (reloaded.scratchpad_fraction()
                == pytest.approx(original.scratchpad_fraction()))

    def test_trace_without_space_rejected(self, tmp_path):
        trace = Trace(name="x",
                      per_cu=[[MemoryInstruction(addresses=(0,))]],
                      issue_interval=4.0)
        with pytest.raises(ValueError):
            save_trace(trace, tmp_path / "x.npz")
