"""End-to-end tests for the simulation service (server, client, protocol).

Covers the acceptance criteria of the service PR: cache-tier
provenance (an identical second request performs zero new
simulations), single-flight coalescing of duplicate concurrent
requests, graceful SIGTERM drain with a flushed checkpoint, the
async job API, and the error surface (400/404/405/503/sweep
failures).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.robustness.checkpoint import CheckpointStore
from repro.service import (
    DESIGNS_BY_NAME,
    ExperimentService,
    ProtocolError,
    ServiceClient,
    ServiceError,
    design_slug,
    resolve_design,
)
from repro.service.protocol import (
    config_with_overrides,
    parse_simulate_request,
)
from repro.system.config import SoCConfig

SCALE = 0.05
POINT = {"workload": "bfs", "design": "baseline-512"}
OTHER_POINT = {"workload": "bfs", "design": "ideal-mmu"}

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def service(tmp_path):
    """An in-process service on a random port, drained at teardown."""
    svc = ExperimentService(
        port=0, jobs=1, scale=SCALE, cache_dir=str(tmp_path / "cache"),
        batch_window=0.005)
    svc.start_in_thread()
    try:
        yield svc
    finally:
        svc.shutdown()


@pytest.fixture
def client(service):
    with ServiceClient(service.host, service.port) as c:
        yield c


# -- protocol unit tests --------------------------------------------------

def test_design_slug_round_trip():
    assert design_slug("VC With OPT") == "vc-with-opt"
    assert design_slug("Baseline 512") == "baseline-512"
    for name, design in DESIGNS_BY_NAME.items():
        assert resolve_design(name) is design


def test_resolve_design_rejects_unknown():
    with pytest.raises(ProtocolError) as exc:
        resolve_design("no-such-design")
    assert exc.value.status == 400
    assert "known designs" in exc.value.message


def test_config_overrides_scalar_only():
    base = SoCConfig()
    assert config_with_overrides(base, {"n_cus": 4}).n_cus == 4
    with pytest.raises(ProtocolError):
        config_with_overrides(base, {"l1": {"size_bytes": 1}})  # nested
    with pytest.raises(ProtocolError):
        config_with_overrides(base, {"no_such_field": 1})
    with pytest.raises(ProtocolError):
        config_with_overrides(base, {"n_cus": "eight"})


def test_parse_simulate_request_shapes():
    base = SoCConfig()
    single = parse_simulate_request(POINT, SCALE, base)
    assert len(single) == 1 and single[0].workload == "bfs"
    many = parse_simulate_request(
        {"points": [POINT, OTHER_POINT], "scale": 0.1}, SCALE, base)
    assert [s.scale for s in many] == [0.1, 0.1]
    # Identical points get identical fingerprints (the coalescing key).
    dup = parse_simulate_request({"points": [POINT, POINT]}, SCALE, base)
    assert dup[0].fingerprint == dup[1].fingerprint
    with pytest.raises(ProtocolError):
        parse_simulate_request({"points": []}, SCALE, base)
    with pytest.raises(ProtocolError):
        parse_simulate_request({"scale": -1, **POINT}, SCALE, base)
    with pytest.raises(ProtocolError):
        parse_simulate_request([POINT], SCALE, base)  # not an object


# -- cache-tier provenance ------------------------------------------------

def test_second_identical_request_hits_memo_with_zero_new_sims(client):
    first = client.simulate([POINT])
    assert [p.tier for p in first.points] == ["computed"]
    sims_after_first = first.simulations_run_total
    assert sims_after_first == 1

    second = client.simulate([POINT])
    assert [p.tier for p in second.points] == ["memo"]
    # The acceptance criterion: zero new simulations, by the sim counter.
    assert second.simulations_run_total == sims_after_first
    assert second.points[0].cycles == first.points[0].cycles
    assert second.points[0].fingerprint == first.points[0].fingerprint

    metrics = client.metrics()
    assert metrics["counters"]["service.tier.computed"] == 1
    assert metrics["counters"]["service.tier.memo"] == 1
    assert metrics["gauges"]["service.simulations_run"] == 1
    # Per-tier latency histograms are exposed on /metrics.
    assert metrics["histograms"]["service.latency.computed"]["count"] == 1
    assert metrics["histograms"]["service.latency.memo"]["count"] == 1
    assert metrics["histograms"]["service.request_seconds"]["count"] >= 2


def test_disk_tier_survives_a_restart(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = ExperimentService(port=0, jobs=1, scale=SCALE,
                              cache_dir=cache_dir)
    first.start_in_thread()
    try:
        with ServiceClient(first.host, first.port) as c:
            assert c.simulate([POINT]).points[0].tier == "computed"
    finally:
        first.shutdown()

    second = ExperimentService(port=0, jobs=1, scale=SCALE,
                               cache_dir=cache_dir)
    second.start_in_thread()
    try:
        with ServiceClient(second.host, second.port) as c:
            reply = c.simulate([POINT])
            assert reply.points[0].tier == "disk"
            assert reply.simulations_run_total == 0  # nothing recomputed
            assert c.simulate([POINT]).points[0].tier == "memo"
    finally:
        second.shutdown()


def test_duplicate_points_in_one_request_coalesce(client):
    reply = client.simulate([POINT, POINT, POINT])
    assert reply.simulations_run_total == 1
    assert [p.coalesced for p in reply.points] == [False, True, True]
    assert len({p.fingerprint for p in reply.points}) == 1


# -- single-flight across concurrent requests -----------------------------

def test_concurrent_duplicate_requests_run_exactly_one_simulation(service):
    n_threads = 4
    barrier = threading.Barrier(n_threads)
    replies, errors = [], []

    def worker():
        with ServiceClient(service.host, service.port) as c:
            barrier.wait()
            try:
                replies.append(c.simulate([POINT]))
            except BaseException as exc:  # noqa: BLE001 - surface in assert
                errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    assert not errors
    assert len(replies) == n_threads
    # Exactly one computation happened; every reply saw the same result.
    assert {r.simulations_run_total for r in replies} == {1}
    cycles = {r.points[0].cycles for r in replies}
    assert len(cycles) == 1
    coalesced = sorted(r.points[0].coalesced for r in replies)
    assert coalesced.count(False) == 1  # one starter ...
    tiers = [r.points[0].tier for r in replies]
    assert all(t in ("computed", "memo") for t in tiers)
    metrics = ServiceClient(service.host, service.port).metrics()
    assert metrics["counters"]["service.tier.computed"] == 1


# -- async jobs -----------------------------------------------------------

def test_job_submit_poll_fetch(client):
    job_id = client.submit([POINT, OTHER_POINT])
    reply = client.poll(job_id)
    assert reply.job_id == job_id and reply.n_points == 2
    done = client.wait(job_id, timeout=120)
    assert {p.design for p in done.points} == {"Baseline 512", "IDEAL MMU"}
    assert all(p.tier == "computed" for p in done.points)
    # The finished record keeps serving after completion.
    assert client.poll(job_id).status == "done"


def test_unknown_job_is_404(client):
    with pytest.raises(ServiceError) as exc:
        client.poll("not-a-job")
    assert exc.value.status == 404 and exc.value.code == "not_found"


# -- error surface --------------------------------------------------------

def test_unknown_workload_is_400(client):
    with pytest.raises(ServiceError) as exc:
        client.simulate([{"workload": "no-such", "design": "baseline-512"}])
    assert exc.value.status == 400
    assert exc.value.code == "bad_request"
    assert "known workloads" in exc.value.message


def test_unknown_route_is_404_and_wrong_method_is_405(client):
    with pytest.raises(ServiceError) as exc:
        client._request("GET", "/v1/nope")
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        client._request("GET", "/v1/simulate")
    assert exc.value.status == 405


def test_healthz_shape_and_per_request_overrides(client):
    health = client.healthz()
    assert health.status == "ok"
    assert health.pool["jobs"] == 1
    assert "bfs" in health.raw["workloads"]
    assert "vc-with-opt" in health.raw["designs"]
    # A per-request scale override is a different point (new fingerprint).
    base = client.simulate([POINT])
    scaled = client.simulate([POINT], scale=0.1,
                             config={"dram_latency": 400})
    assert scaled.points[0].fingerprint != base.points[0].fingerprint
    assert scaled.points[0].scale == 0.1
    # ... and the default-scale point is still memoized independently.
    assert client.simulate([POINT]).points[0].tier == "memo"


def test_new_work_rejected_with_503_while_draining(service):
    with ServiceClient(service.host, service.port) as c:
        job_id = c.submit([OTHER_POINT])  # occupy the service ...
        c.drain()  # ... so the drain stays in progress
        with pytest.raises(ServiceError) as exc:
            c.simulate([POINT])
        assert exc.value.status == 503 and exc.value.code == "draining"
        assert c.healthz().status == "draining"
    service.shutdown()
    # The in-flight job still completed before the drain finished.
    record = service._jobs[job_id]
    assert record["status"] == "done"


# -- the shipped example --------------------------------------------------

def test_service_client_example_runs(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_SCALE", None)
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / "service_client.py"),
         "0.05"],
        capture_output=True, text=True, timeout=300,
        env=env, cwd=str(tmp_path))
    assert proc.returncode == 0, proc.stderr
    assert "submitted job" in proc.stdout
    assert "[computed]" in proc.stdout
    assert "[memo]" in proc.stdout
    assert "0 new simulations" in proc.stdout
    assert "service drained cleanly" in proc.stdout


# -- SIGTERM drain (the CLI path, in a real subprocess) -------------------

def test_sigterm_drains_in_flight_wave_and_flushes_checkpoint(tmp_path):
    checkpoint = tmp_path / "serve.ckpt"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_SCALE", None)
    proc = subprocess.Popen(
        [sys.executable, "-u", "-c",
         "from repro.experiments.cli import main; raise SystemExit(main())",
         "serve", "--port", "0", "--scale", "0.1",
         "--checkpoint", str(checkpoint)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(tmp_path))
    try:
        banner = proc.stdout.readline()
        assert "listening on http://" in banner, banner
        port = int(banner.rsplit(":", 1)[1])

        outcome = {}

        def request():
            try:
                with ServiceClient("127.0.0.1", port) as c:
                    outcome["reply"] = c.simulate(
                        [{"workload": "pagerank", "design": "baseline-512"}])
            except BaseException as exc:  # noqa: BLE001 - surface in assert
                outcome["error"] = exc

        thread = threading.Thread(target=request)
        thread.start()
        time.sleep(0.5)  # let the wave start computing ...
        proc.send_signal(signal.SIGTERM)  # ... then ask for a drain
        thread.join(180)
        assert not thread.is_alive()
        stdout = proc.stdout.read()
        code = proc.wait(60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(30)

    # The in-flight request was answered, not dropped.
    assert outcome.get("error") is None, outcome.get("error")
    reply = outcome["reply"]
    assert reply.points[0].tier == "computed"
    assert reply.points[0].cycles > 0
    # The drain was clean: exit 0 and the farewell line.
    assert code == 0
    assert "repro-service drained cleanly" in stdout
    # The checkpoint was flushed with the completed point.
    records = CheckpointStore(str(checkpoint)).load()
    assert reply.points[0].fingerprint in records
