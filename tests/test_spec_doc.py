"""docs/SWEEPSPEC.md must match what the schema actually renders.

The committed spec reference is generated (``python -m
repro.experiments.spec_doc``); any SweepSpec field, error class, or
preset added or changed without regenerating the doc fails here with a
diff-style message.
"""

from __future__ import annotations

import dataclasses
import difflib
from pathlib import Path

from repro.experiments import spec_doc, sweepspec
from repro.experiments.spec_doc import (
    ERROR_DESCRIPTIONS,
    FIELD_DOCS,
    render_spec_doc,
)

DOC = Path(__file__).resolve().parent.parent / "docs" / "SWEEPSPEC.md"


def test_spec_doc_matches_schema():
    committed = DOC.read_text(encoding="utf-8")
    rendered = render_spec_doc()
    if committed != rendered:
        diff = "\n".join(difflib.unified_diff(
            committed.splitlines(), rendered.splitlines(),
            fromfile="docs/SWEEPSPEC.md (committed)",
            tofile="docs/SWEEPSPEC.md (rendered from the schema)",
            lineterm="", n=2))
        raise AssertionError(
            "docs/SWEEPSPEC.md is stale; regenerate with\n"
            "  PYTHONPATH=src python -m repro.experiments.spec_doc "
            "> docs/SWEEPSPEC.md\n" + diff)


def test_every_field_is_documented():
    for cls, docs in FIELD_DOCS.items():
        assert set(docs) == {f.name for f in dataclasses.fields(cls)}, (
            f"FIELD_DOCS drifted for {cls.__name__}")


def test_every_error_class_is_documented():
    actual = {name for name in dir(sweepspec)
              if isinstance(getattr(sweepspec, name), type)
              and issubclass(getattr(sweepspec, name),
                             sweepspec.SweepSpecError)
              and getattr(sweepspec, name) is not sweepspec.SweepSpecError}
    assert set(ERROR_DESCRIPTIONS) == actual


def test_examples_validate_and_are_committed():
    """Every worked example parses; the two file-backed ones match disk."""
    import json

    for example in (spec_doc.EXAMPLE_GRID, spec_doc.EXAMPLE_POINTS,
                    spec_doc.EXAMPLE_FAULTS, spec_doc.EXAMPLE_INLINE_DESIGN):
        sweepspec.SweepSpec.from_dict(example)  # raises on drift

    specs_dir = DOC.parent.parent / "examples" / "specs"
    for fname, example in (("fig4_sweep.json", spec_doc.EXAMPLE_GRID),
                           ("chaos_sweep.json", spec_doc.EXAMPLE_FAULTS)):
        on_disk = json.loads((specs_dir / fname).read_text(encoding="utf-8"))
        assert on_disk == example, (
            f"examples/specs/{fname} drifted from the documented example")
