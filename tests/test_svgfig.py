"""Tests for the SVG figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svgfig import cdf_chart, grouped_bar_chart


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestGroupedBarChart:
    def test_valid_svg(self):
        svg = grouped_bar_chart("t", ["a", "b"], {"s1": [1.0, 2.0]})
        root = parse(svg)
        assert root.tag.endswith("svg")

    def test_bars_present_per_series_and_category(self):
        svg = grouped_bar_chart("t", ["a", "b", "c"],
                                {"s1": [1, 2, 3], "s2": [3, 2, 1]})
        root = parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        rects = root.findall(f"{ns}rect")
        # background + 6 bars + 2 legend swatches
        assert len(rects) >= 9

    def test_tooltips_carry_values(self):
        svg = grouped_bar_chart("t", ["cat"], {"s": [0.123]})
        assert "0.123" in svg

    def test_bar_heights_scale_with_values(self):
        svg = grouped_bar_chart("t", ["a", "b"], {"s": [1.0, 2.0]})
        root = parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        bars = [r for r in root.findall(f"{ns}rect")
                if r.find(f"{ns}title") is not None]
        heights = sorted(float(b.get("height")) for b in bars)
        assert heights[1] == pytest.approx(2 * heights[0], rel=0.01)

    def test_reference_line_drawn(self):
        svg = grouped_bar_chart("t", ["a"], {"s": [2.0]}, reference_line=1.0)
        assert "stroke-dasharray" in svg

    def test_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart("t", [], {})
        with pytest.raises(ValueError):
            grouped_bar_chart("t", ["a"], {"s": [1.0, 2.0]})

    def test_labels_escaped(self):
        svg = grouped_bar_chart("a<b>&c", ["x<y"], {"s&t": [1.0]})
        parse(svg)  # must stay well-formed
        assert "a&lt;b&gt;&amp;c" in svg


class TestCdfChart:
    def test_valid_svg_with_polylines(self):
        svg = cdf_chart("t", {"s": [(0.0, 0.1), (10.0, 0.5), (20.0, 1.0)]})
        root = parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        assert root.findall(f"{ns}polyline")

    def test_x_max_clips(self):
        svg = cdf_chart("t", {"s": [(0.0, 0.5), (1e9, 1.0)]}, x_max=100.0)
        parse(svg)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_chart("t", {})


class TestFigureRenderers:
    def test_all_figures_render(self, tmp_path):
        from repro.experiments.common import ResultCache
        from repro.experiments import figures_svg

        cache = ResultCache(scale=0.05)
        # Monkeypatch the drivers to a two-workload subset for speed by
        # rendering directly from the runners with restricted workloads.
        svg = figures_svg.fig4_svg.__wrapped__ if hasattr(
            figures_svg.fig4_svg, "__wrapped__") else None
        paths = figures_svg.save_all(tmp_path, cache)
        assert len(paths) == 7
        for path in paths:
            parse(path.read_text())
