"""``/v1/sweep``: validation to 400, durable jobs, gateway sharding.

A SweepSpec posted to the service becomes a *job*: journaled before the
202 (so a crashed server replays it), validated by the same strict
parser the CLI uses (so a bad spec is a typed 400, never a half-run),
and shardable through the consistent-hash gateway unchanged.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.sweepspec import SweepSpec
from repro.service.client import ServiceClient, ServiceError
from repro.service.gateway import launch_local_gateway
from repro.service.jobs import JobJournal
from repro.service.server import ExperimentService

SCALE = 0.05

REPO_ROOT = Path(__file__).resolve().parent.parent

SPEC = {
    "version": 1,
    "name": "svc-sweep",
    "workloads": ["bfs"],
    "designs": ["ideal-mmu", "baseline-512"],
}


def _service(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    return ExperimentService(port=0, jobs=1, scale=SCALE,
                             batch_window=0.005, **kwargs)


# -- happy path -----------------------------------------------------------

def test_sweep_job_runs_and_second_submit_is_all_cache(tmp_path):
    service = _service(tmp_path)
    service.start_in_thread()
    try:
        with ServiceClient(service.host, service.port) as client:
            job_id = client.sweep(SPEC)
            reply = client.wait(job_id, timeout=120.0)
            assert [(p.workload, p.design) for p in reply.points] == \
                [("bfs", "IDEAL MMU"), ("bfs", "Baseline 512")]
            assert all(p.cycles > 0 for p in reply.points)

            again = client.wait(client.sweep(SPEC), timeout=120.0)
            assert (again.simulations_run_total
                    == reply.simulations_run_total)
            assert all(p.tier in ("memo", "disk") for p in again.points)
    finally:
        service.shutdown()


def test_sweep_accepts_spec_objects_and_respects_output(tmp_path):
    service = _service(tmp_path)
    service.start_in_thread()
    try:
        with ServiceClient(service.host, service.port) as client:
            spec = SweepSpec.from_dict(
                {**SPEC, "output": {"include_counters": True}})
            reply = client.wait(client.sweep(spec), timeout=120.0)
            assert all(p.counters for p in reply.points)
    finally:
        service.shutdown()


# -- validation: typed spec errors become HTTP 400 ------------------------

BAD_SWEEPS = [
    pytest.param({**SPEC, "designs": ["nope"]},
                 "unknown design 'nope'", id="unknown-design"),
    pytest.param({**SPEC, "workloads": ["nope"]},
                 "unknown workload 'nope'", id="unknown-workload"),
    pytest.param({**SPEC, "scale": -1}, "positive", id="bad-scale"),
    pytest.param({**SPEC, "version": 99}, "version 99", id="version-skew"),
    pytest.param({**SPEC, "faults": {"rates": [0.001]}},
                 "repro-experiment sweep", id="fault-plan-rejected"),
    pytest.param({**SPEC, "check_invariants": True},
                 "--check-invariants", id="needs-auditing-server"),
]


@pytest.mark.parametrize("doc,fragment", BAD_SWEEPS)
def test_bad_sweep_is_http_400(tmp_path, doc, fragment):
    service = _service(tmp_path)
    service.start_in_thread()
    try:
        with ServiceClient(service.host, service.port) as client:
            with pytest.raises(ServiceError) as exc:
                client.sweep(doc)
            assert exc.value.status == 400
            assert fragment in str(exc.value)
    finally:
        service.shutdown()


def test_sweep_without_spec_object_is_400(tmp_path):
    service = _service(tmp_path)
    service.start_in_thread()
    try:
        with ServiceClient(service.host, service.port) as client:
            with pytest.raises(ServiceError) as exc:
                client._request("POST", "/v1/sweep", {"points": []},
                                idempotent=False)
            assert exc.value.status == 400
            assert "'sweep' object" in str(exc.value)
    finally:
        service.shutdown()


# -- durability: the spec survives a server restart -----------------------

def test_sweep_job_survives_restart(tmp_path):
    journal = str(tmp_path / "jobs.rpck")
    first = _service(tmp_path, jobs_journal=journal)
    first.start_in_thread()
    try:
        with ServiceClient(first.host, first.port) as client:
            job_id = client.sweep(SPEC)
            cycles = [p.cycles
                      for p in client.wait(job_id, timeout=120.0).points]
    finally:
        first.shutdown()

    second = _service(tmp_path, jobs_journal=journal)
    second.start_in_thread()
    try:
        with ServiceClient(second.host, second.port) as client:
            reply = client.poll(job_id)
            assert reply.status == "done"
            assert [p.cycles for p in reply.result.points] == cycles
    finally:
        second.shutdown()


def test_journaled_sweep_replays_after_crash(tmp_path):
    """Crash between journal write and execution: the raw sweep body in
    the journal replays through the sweep-aware parser to completion."""
    journal = JobJournal(tmp_path / "jobs.rpck")
    body = json.dumps({"sweep": SPEC}).encode("utf-8")
    journal.record_submitted("sweep-resume", body, "trace-sw", time.time())

    service = _service(tmp_path, jobs_journal=str(tmp_path / "jobs.rpck"))
    service.start_in_thread()
    try:
        with ServiceClient(service.host, service.port) as client:
            result = client.wait("sweep-resume", timeout=120.0)
            assert [p.design for p in result.points] == \
                ["IDEAL MMU", "Baseline 512"]
    finally:
        service.shutdown()

    jobs = JobJournal(tmp_path / "jobs.rpck").replay()
    assert [j.job_id for j in jobs] == ["sweep-resume"]
    assert jobs[0].finished and jobs[0].status == "done"


# -- the gateway shards a sweep like any other job ------------------------

def test_gateway_runs_sweep_across_replicas(tmp_path):
    gw = launch_local_gateway(
        2, mode="thread", cache_dir=str(tmp_path / "cache"), scale=SCALE,
        batch_window=0.002, health_interval=0.1)
    try:
        with ServiceClient(gw.host, gw.port) as client:
            reply = client.wait(client.sweep(SPEC), timeout=120.0)
            assert [(p.workload, p.design) for p in reply.points] == \
                [("bfs", "IDEAL MMU"), ("bfs", "Baseline 512")]
            assert all(p.cycles > 0 for p in reply.points)

            with pytest.raises(ServiceError) as exc:
                client.sweep({**SPEC, "designs": ["nope"]})
            assert exc.value.status == 400
            assert "unknown design 'nope'" in str(exc.value)
    finally:
        gw.shutdown()


# -- the shipped example --------------------------------------------------

def test_sweep_spec_example_runs(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_SCALE", None)
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / "sweep_spec.py"),
         "0.05"],
        capture_output=True, text=True, timeout=300,
        env=env, cwd=str(tmp_path))
    assert proc.returncode == 0, proc.stderr
    assert "rejected as UnknownDesignError" in proc.stdout
    assert "0 new simulations" in proc.stdout
    assert "submitted sweep job" in proc.stdout
    assert "[disk]" in proc.stdout
    assert "service drained cleanly" in proc.stdout
