"""SweepSpec: strict validation, stable fingerprints, golden parity.

The declarative sweep plan must (a) reject every malformed document
with a *typed* error and a precise message, (b) fingerprint by content
— not key order, not the label — and (c) enumerate bit-identically to
the bespoke loops it replaced in the fig4 driver, ``bench``, and the
chaos harness.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments import chaos
from repro.experiments.bench import DEFAULT_POINTS
from repro.experiments.common import ResultCache
from repro.experiments.sweepspec import (
    BadFieldError,
    BadScaleError,
    ConflictingFieldsError,
    FaultSpec,
    SweepSpec,
    SweepSpecError,
    UnknownDesignError,
    UnknownWorkloadError,
    VersionSkewError,
    design_to_wire,
    run_sweep,
)
from repro.system.designs import (
    BASELINE_512,
    BASELINE_16K,
    IDEAL_MMU,
    PRESET_DESIGNS,
    design_from_dict,
    design_to_dict,
    design_slug,
    lookup_design,
)

SCALE = 0.02

GRID = {"version": 1, "workloads": ["bfs"], "designs": ["baseline-512"]}


def _with(**overrides):
    doc = dict(GRID)
    doc.update(overrides)
    return {k: v for k, v in doc.items() if v is not ...}


# -- validation: every failure is a typed error with a precise message ----

BAD_SPECS = [
    pytest.param(_with(designs=["nope"]), UnknownDesignError,
                 "unknown design 'nope'", id="unknown-design-slug"),
    pytest.param(_with(workloads=["nope"]), UnknownWorkloadError,
                 "unknown workload 'nope'", id="unknown-workload"),
    pytest.param(_with(scale=0), BadScaleError, "positive",
                 id="scale-zero"),
    pytest.param(_with(scale=-1), BadScaleError, "positive",
                 id="scale-negative"),
    pytest.param(_with(scale="x"), BadScaleError, "number",
                 id="scale-string"),
    pytest.param(_with(points=[{"workload": "bfs",
                                "design": "baseline-512"}]),
                 ConflictingFieldsError, "not both", id="grid-and-points"),
    pytest.param(_with(workloads=..., designs=...), BadFieldError,
                 "needs either", id="no-mode"),
    pytest.param(_with(workloads=...), BadFieldError, "needs either",
                 id="half-grid"),
    pytest.param(_with(version=2), VersionSkewError, "version 2",
                 id="version-skew"),
    pytest.param(_with(version=...), VersionSkewError, "version",
                 id="version-missing"),
    pytest.param(_with(frobnicate=1), BadFieldError, "frobnicate",
                 id="unknown-top-level-key"),
    pytest.param(_with(config={"no_such_knob": 3}), BadFieldError,
                 "no_such_knob", id="bad-config-override"),
    pytest.param(_with(designs=[{"name": "x", "kind": "warp"}]),
                 BadFieldError, "invalid inline design",
                 id="bad-inline-design"),
    pytest.param(_with(faults={"rates": []}), BadFieldError,
                 "non-empty", id="empty-fault-rates"),
    pytest.param(_with(faults={"rates": [-0.1]}), BadFieldError,
                 "nonnegative", id="negative-fault-rate"),
    pytest.param(_with(faults={"rates": [0.1]}, track_lifetimes=True),
                 ConflictingFieldsError, "lifetimes",
                 id="faults-with-lifetimes"),
    pytest.param(_with(designs=["baseline-512",
                                {"name": "Baseline 512",
                                 "iommu_entries": 1024}]),
                 ConflictingFieldsError, "keyed by design name",
                 id="duplicate-design-names"),
]


@pytest.mark.parametrize("doc,error,fragment", BAD_SPECS)
def test_bad_spec_raises_typed_error(doc, error, fragment):
    with pytest.raises(error, match=fragment):
        SweepSpec.from_dict(doc)
    assert issubclass(error, SweepSpecError)
    assert issubclass(error, ValueError)


def test_duplicate_names_with_identical_params_are_fine():
    # The name-collision rule only bites when the *parameters* differ;
    # repeating one design (slug, canonical name, identical inline
    # object) is merely redundant, never ambiguous.
    inline = design_to_dict(BASELINE_512)
    spec = SweepSpec.from_dict(
        _with(designs=[inline, "baseline-512", "Baseline 512"]))
    assert [d.name for d in spec.designs] == ["Baseline 512"] * 3


# -- fingerprints: content-addressed, label-free, order-free --------------

def test_fingerprint_ignores_key_order_and_name():
    a = SweepSpec.from_dict(
        {"version": 1, "name": "alpha", "workloads": ["bfs", "kmeans"],
         "designs": ["ideal-mmu", "baseline-512"], "scale": 0.05})
    shuffled = {"scale": 0.05, "designs": ["ideal-mmu", "baseline-512"],
                "name": "omega", "workloads": ["bfs", "kmeans"],
                "version": 1}
    b = SweepSpec.from_dict(shuffled)
    assert a.fingerprint() == b.fingerprint()
    assert len(a.fingerprint()) == 64


def test_fingerprint_tracks_content():
    base = SweepSpec.from_dict(_with())
    assert base.fingerprint() != SweepSpec.from_dict(
        _with(scale=0.1)).fingerprint()
    assert base.fingerprint() != SweepSpec.from_dict(
        _with(designs=["baseline-16k"])).fingerprint()
    assert base.fingerprint() != SweepSpec.from_dict(
        _with(config={"n_cus": 8})).fingerprint()
    assert base.fingerprint() != SweepSpec.from_dict(
        _with(check_invariants=True)).fingerprint()


def test_json_round_trip_is_identity():
    spec = SweepSpec.from_dict(
        {"version": 1, "name": "rt", "workloads": ["bfs"],
         "designs": ["baseline-512",
                     design_to_dict(dataclasses.replace(
                         BASELINE_512, name="BW2", iommu_bandwidth=2.0))],
         "scale": 0.05, "config": {"n_cus": 8},
         "faults": {"rates": [0.001, 0.002], "seed": 7}})
    again = SweepSpec.from_json(spec.to_json())
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()
    assert json.loads(spec.to_json()) == spec.to_dict()


def test_presets_serialize_as_slugs_and_round_trip():
    for design in PRESET_DESIGNS:
        wire = design_to_wire(design)
        assert wire == design_slug(design.name)
        assert lookup_design(wire) == design
    # A tweaked preset is no longer the registry design: inline form.
    tweaked = dataclasses.replace(BASELINE_512, iommu_bandwidth=2.0)
    wire = design_to_wire(tweaked)
    assert isinstance(wire, dict)
    assert design_from_dict(wire) == tweaked


# -- golden parity: spec enumeration == the bespoke loops it replaced -----

def test_fig4_grid_matches_hand_enumeration():
    """The fig4 grid through a JSON round-tripped spec is bit-identical
    to the old hand-rolled ``run_many`` enumeration."""
    from repro.experiments.fig4 import DESIGNS

    names = ("bfs", "kmeans")
    by_hand = ResultCache(scale=SCALE)
    expected = by_hand.run_many(
        [(w, d) for w in names for d in DESIGNS])

    spec = SweepSpec.from_json(
        SweepSpec.grid(names, DESIGNS, name="fig4",
                       scale=SCALE).to_json())
    via_spec = ResultCache()
    outcome = run_sweep(spec, via_spec)

    assert set(by_hand._results) == set(via_spec._results)
    assert len(outcome.results) == len(expected)
    for ours, theirs in zip(outcome.results, expected):
        assert ours.cycles == theirs.cycles
        assert ours.instructions == theirs.instructions
        assert dict(ours.counters) == dict(theirs.counters)


def test_bench_points_enumerate_through_spec():
    spec = SweepSpec.explicit(
        [(workload, design) for _figure, workload, design
         in DEFAULT_POINTS], name="bench")
    resolved = spec.resolved_points()
    assert [(w, d.name) for w, d, _t in resolved] == \
        [(w, d.name) for _f, w, d in DEFAULT_POINTS]
    assert all(t is False for _w, _d, t in resolved)


def test_chaos_run_and_run_spec_are_bit_identical():
    """``chaos.run`` (which now builds a spec) and ``chaos.run_spec`` on
    the JSON round-trip of the same plan yield equal ChaosPoints."""
    designs = (BASELINE_512,)
    direct = chaos.run(workloads=("bfs",), rates=(0.002,), seed=3,
                       scale=SCALE, designs=designs)
    spec = SweepSpec.from_json(SweepSpec.grid(
        ("bfs",), designs, scale=SCALE,
        faults=FaultSpec(rates=(0.002,), seed=3)).to_json())
    replay = chaos.run_spec(spec)
    assert replay.seed == direct.seed
    assert replay.points == direct.points  # frozen dataclass equality


def test_fault_points_expand_rate_innermost():
    spec = SweepSpec.grid(("bfs", "kmeans"), (IDEAL_MMU, BASELINE_16K),
                          faults=FaultSpec(rates=(0.1, 0.2)))
    expanded = [(w, d.name, r) for w, d, r in spec.fault_points()]
    assert expanded == [
        ("bfs", "IDEAL MMU", 0.1), ("bfs", "IDEAL MMU", 0.2),
        ("bfs", "Baseline 16K", 0.1), ("bfs", "Baseline 16K", 0.2),
        ("kmeans", "IDEAL MMU", 0.1), ("kmeans", "IDEAL MMU", 0.2),
        ("kmeans", "Baseline 16K", 0.1), ("kmeans", "Baseline 16K", 0.2),
    ]


# -- the runner: cache isolation and the zero-resim warm path -------------

def test_run_sweep_restores_cache_and_filters_warm_runs(tmp_path):
    cache = ResultCache(scale=0.5, cache_dir=str(tmp_path))
    saved_config = cache.config
    spec = SweepSpec.grid(("bfs",), (IDEAL_MMU,), scale=SCALE,
                          config={"dram_latency": 160})
    cold = run_sweep(spec, cache)
    assert cold.simulations_run == 1
    assert cold.scale == SCALE
    # The spec's scale/config applied during the run, then rolled back.
    assert cache.scale == 0.5
    assert cache.config is saved_config

    warm = run_sweep(spec, cache)
    assert warm.simulations_run == 0
    assert warm.results[0].cycles == cold.results[0].cycles


def test_run_sweep_rejects_fault_plans():
    spec = SweepSpec.grid(("bfs",), (IDEAL_MMU,),
                          faults=FaultSpec(rates=(0.1,)))
    with pytest.raises(ValueError, match="chaos"):
        run_sweep(spec, ResultCache(scale=SCALE))


def test_outcome_report_shape():
    spec = SweepSpec.from_dict(_with(name="shape", scale=SCALE))
    outcome = run_sweep(spec, ResultCache())
    payload = outcome.as_dict()
    assert payload["name"] == "shape"
    assert payload["fingerprint"] == spec.fingerprint()
    assert payload["simulations_run"] == 1
    (point,) = payload["points"]
    assert point["workload"] == "bfs"
    assert point["design_slug"] == "baseline-512"
    assert "counters" not in point  # output.include_counters defaults off
    assert "Sweep 'shape'" in outcome.render()
    assert "baseline" in outcome.render().lower()
