"""Tests for dynamic synonym remapping (§4.3)."""

import pytest

from repro.core.synonym_remap import SynonymRemapTable
from repro.core.virtual_hierarchy import VirtualCacheHierarchy
from repro.gpu.coalescer import CoalescedRequest
from repro.memsys.address_space import AddressSpace
from repro.memsys.addressing import line_address, page_number
from repro.memsys.permissions import Permissions


class TestSynonymRemapTable:
    def test_learn_and_lookup(self):
        srt = SynonymRemapTable(capacity=4)
        srt.insert(0, 200, 0, 100)
        assert srt.lookup(0, 200) == (0, 100)
        assert srt.lookup(0, 100) is None
        assert srt.hits == 1 and srt.misses == 1

    def test_lru_eviction(self):
        srt = SynonymRemapTable(capacity=2)
        srt.insert(0, 1, 0, 100)
        srt.insert(0, 2, 0, 100)
        srt.lookup(0, 1)
        srt.insert(0, 3, 0, 100)  # evicts (0, 2)
        assert srt.lookup(0, 2) is None
        assert srt.lookup(0, 1) is not None
        assert len(srt) == 2

    def test_invalidate_leading_drops_all_sources(self):
        srt = SynonymRemapTable(capacity=8)
        srt.insert(0, 1, 0, 100)
        srt.insert(0, 2, 0, 100)
        srt.insert(0, 3, 0, 999)
        assert srt.invalidate_leading(0, 100) == 2
        assert srt.lookup(0, 3) == (0, 999)
        assert len(srt) == 1

    def test_invalidate_source(self):
        srt = SynonymRemapTable(capacity=8)
        srt.insert(0, 1, 0, 100)
        assert srt.invalidate(0, 1) is True
        assert srt.invalidate(0, 1) is False

    def test_self_mapping_rejected(self):
        srt = SynonymRemapTable()
        with pytest.raises(ValueError):
            srt.insert(0, 5, 0, 5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SynonymRemapTable(capacity=0)


class TestHierarchyWithSRT:
    def setup_synonyms(self, small_config, enable):
        space = AddressSpace(asid=0)
        m = space.mmap(2, permissions=Permissions.READ_ONLY)
        syn = space.map_synonym(m)
        h = VirtualCacheHierarchy(small_config, {0: space.page_table},
                                  enable_synonym_remapping=enable)
        return h, space, m, syn

    def read(self, h, cu, va, now):
        return h.access(cu, CoalescedRequest(line_address(va), False, 1), now)

    def test_repeated_synonym_accesses_without_srt_replay_every_time(
            self, small_config):
        h, space, m, syn = self.setup_synonyms(small_config, enable=False)
        t = self.read(h, 0, m.base_va, 0.0)
        for _ in range(5):
            t = self.read(h, 0, syn.base_va, t)
        assert h.counters["vc.synonym_replays"] == 5

    def test_srt_converts_synonym_accesses_to_cache_hits(self, small_config):
        h, space, m, syn = self.setup_synonyms(small_config, enable=True)
        t = self.read(h, 0, m.base_va, 0.0)
        for _ in range(5):
            t = self.read(h, 0, syn.base_va, t)
        # One replay to learn the remapping; the rest are L1 hits.
        assert h.counters["vc.synonym_replays"] == 1
        assert h.counters["vc.srt_remaps"] == 4
        assert h.counters["vc.l1_hits"] >= 4

    def test_srt_is_per_cu(self, small_config):
        h, space, m, syn = self.setup_synonyms(small_config, enable=True)
        t = self.read(h, 0, m.base_va, 0.0)
        t = self.read(h, 0, syn.base_va, t)   # CU0 learns
        t = self.read(h, 1, syn.base_va, t)   # CU1 must learn separately
        assert h.counters["vc.synonym_replays"] == 2

    def test_shootdown_drops_remappings(self, small_config):
        h, space, m, syn = self.setup_synonyms(small_config, enable=True)
        t = self.read(h, 0, m.base_va, 0.0)
        t = self.read(h, 0, syn.base_va, t)
        assert len(h.srts[0]) == 1
        h.shootdown(0, page_number(m.base_va), t)
        assert len(h.srts[0]) == 0

    def test_shootdown_of_synonym_source_drops_its_remapping(self, small_config):
        h, space, m, syn = self.setup_synonyms(small_config, enable=True)
        t = self.read(h, 0, m.base_va, 0.0)
        t = self.read(h, 0, syn.base_va, t)
        # Shooting down the *source* page filters at the FT (no leading
        # entry) but must still clear its SRT remapping.
        assert h.shootdown(0, page_number(syn.base_va), t) is False
        assert len(h.srts[0]) == 0

    def test_disabled_by_default(self, small_config):
        space = AddressSpace(asid=0)
        h = VirtualCacheHierarchy(small_config, {0: space.page_table})
        assert h.srts is None
