"""Tests for the synthetic stress-workload generators."""

import pytest

from repro.core.virtual_hierarchy import VirtualCacheHierarchy
from repro.system.run import simulate
from repro.workloads.synthetic import (
    gather_kernel,
    multiprocess_homonyms,
    synonym_stress,
)


class TestSynonymStress:
    def test_generates_aliased_accesses(self):
        trace = synonym_stress(n_pages=16, n_accesses=400, seed=3)
        assert trace.n_instructions == 400
        assert trace.metadata["n_aliases"] == 3
        # The footprint spans the aliases (several views of 16 pages).
        assert trace.footprint_pages() > 16

    def test_synonym_fraction_zero_uses_only_leading(self):
        trace = synonym_stress(n_pages=8, n_accesses=200,
                               synonym_fraction=0.0, seed=4)
        region_pages = {a // 4096 for i in trace.all_instructions()
                        for a in i.addresses}
        assert len(region_pages) <= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            synonym_stress(synonym_fraction=1.5)
        with pytest.raises(ValueError):
            synonym_stress(n_aliases=1)

    def test_runs_on_vc_hierarchy_and_replays(self, small_config):
        trace = synonym_stress(n_pages=16, n_accesses=600, n_cus=4, seed=5)
        h = VirtualCacheHierarchy(small_config,
                                  {0: trace.address_space.page_table})
        result = simulate(trace, h, small_config, design="vc")
        assert result.counters.get("vc.synonym_replays", 0) > 0
        # No duplication: whichever alias won the leading role per page
        # (first touch), each physical line is cached at most once.
        space = trace.address_space
        physical_lines = [
            space.translate(line.line_addr * 128) // 128
            for line in h.l2.resident_lines()
        ]
        assert len(physical_lines) == len(set(physical_lines))

    def test_srt_reduces_replays(self, small_config):
        trace = synonym_stress(n_pages=16, n_accesses=600, n_cus=4, seed=5)
        pts = {0: trace.address_space.page_table}
        without = simulate(trace, VirtualCacheHierarchy(small_config, pts),
                           small_config)
        trace2 = synonym_stress(n_pages=16, n_accesses=600, n_cus=4, seed=5)
        pts2 = {0: trace2.address_space.page_table}
        with_srt = simulate(
            trace2,
            VirtualCacheHierarchy(small_config, pts2,
                                  enable_synonym_remapping=True),
            small_config)
        assert (with_srt.counters.get("vc.synonym_replays", 0)
                < without.counters.get("vc.synonym_replays", 0))


class TestMultiprocessHomonyms:
    def test_construction(self):
        wl = multiprocess_homonyms(n_private_pages=16, n_shared_pages=4,
                                   n_accesses=200)
        assert len(wl.traces) == 2
        assert wl.spaces[0].asid == 0 and wl.spaces[1].asid == 1
        # True homonyms: the same VA translates differently per space.
        va = wl.spaces[0].mappings[0].base_va
        assert wl.spaces[0].translate(va) != wl.spaces[1].translate(va)

    def test_shared_region_is_cross_asid_synonym(self):
        wl = multiprocess_homonyms(n_private_pages=16, n_shared_pages=4,
                                   n_accesses=100)
        a, b = wl.shared_base_vas
        assert wl.spaces[0].translate(a) == wl.spaces[1].translate(b)

    def test_time_sharing_needs_no_flush(self, small_config):
        wl = multiprocess_homonyms(n_private_pages=16, n_shared_pages=4,
                                   n_accesses=400, n_cus=4)
        tables = {s.asid: s.page_table for s in wl.spaces}
        h = VirtualCacheHierarchy(small_config, tables,
                                  fault_on_rw_synonym=False)
        r0 = simulate(wl.traces[0], h, small_config, asid=0)
        lines_after_a = len(h.l2)
        r1 = simulate(wl.traces[1], h, small_config, asid=1)
        # ASID-tagged lines: process B ran with A's lines still resident
        # and nothing was flushed on the context switch (§4.3, homonyms).
        assert lines_after_a > 0
        assert r1.counters["vc.accesses"] > 0
        assert h.counters.as_dict().get("vc.l1_flushes", 0) == 0


class TestGatherKernel:
    def test_shape(self):
        trace = gather_kernel(n_pages=32, n_instructions=200, seed=6)
        assert trace.n_instructions == 200
        assert trace.mean_divergence() > 10
        assert trace.footprint_pages() <= 32

    def test_skew_affects_locality(self, small_config):
        from repro.system.designs import BASELINE_512
        hot = gather_kernel(n_pages=64, n_instructions=800, n_cus=4,
                            zipf_exponent=1.5, seed=7)
        cold = gather_kernel(n_pages=64, n_instructions=800, n_cus=4,
                             zipf_exponent=0.01, seed=7)
        r_hot = simulate(hot, BASELINE_512.build(
            small_config, {0: hot.address_space.page_table}), small_config)
        r_cold = simulate(cold, BASELINE_512.build(
            small_config, {0: cold.address_space.page_table}), small_config)
        hot_hits = r_hot.counters["l1.hits"] + r_hot.counters["l2.hits"]
        cold_hits = r_cold.counters["l1.hits"] + r_cold.counters["l2.hits"]
        assert hot_hits > cold_hits
