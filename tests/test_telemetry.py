"""The telemetry pipeline: trace propagation, exposition, timelines.

Covers the observability PR's acceptance criteria end to end:

* one traced service request stitches into a single client → server →
  pool-worker → simulate span tree;
* ``/metrics`` renders strict Prometheus text exposition (escaping,
  bucket cumulativity) while JSON clients keep the snapshot form;
* :class:`~repro.obs.metrics.MetricsRegistry` /
  :class:`~repro.obs.metrics.LatencyHistogram` merges stay exact in
  the edge cases (empty registries, mismatched bucket layouts,
  merge-after-snapshot);
* the :class:`~repro.obs.timeline.Timeline` coarsens, merges, and
  round-trips;
* the loadtest harness reports p50/p95/p99 + a saturation knee, and
  the dashboard renders the queue-depth / filter-rate timelines.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments import dashboard, loadtest
from repro.experiments.loadtest import LevelResult, find_knee
from repro.analysis.svgfig import line_chart
from repro.obs import Observability
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.promexp import (
    histogram_buckets,
    prometheus_name,
    render_prometheus,
    validate_exposition,
)
from repro.obs.timeline import Timeline
from repro.obs.trace_context import (
    PARENT_HEADER,
    TRACE_HEADER,
    ContextTracer,
    TraceContext,
    valid_trace_id,
)
from repro.obs.trace_view import (
    load_events,
    render_trace,
    render_traces,
    stitch,
)
from repro.obs.tracer import RecordingTracer
from repro.service import ExperimentService, ServiceClient
from repro.system.designs import IDEAL_MMU, VC_WITH_OPT

SCALE = 0.05


# -- trace contexts -------------------------------------------------------

def test_trace_context_new_is_well_formed():
    ctx = TraceContext.new()
    assert valid_trace_id(ctx.trace_id) and len(ctx.trace_id) == 16
    assert valid_trace_id(ctx.span_id) and len(ctx.span_id) == 8
    assert ctx.parent_id is None


def test_trace_context_child_links_to_parent():
    root = TraceContext.new()
    child = root.child()
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert child.span_id != root.span_id
    assert child.span_fields()["parent"] == root.span_id
    assert "parent" not in root.span_fields()


def test_trace_context_header_round_trip_case_insensitive():
    root = TraceContext.new()
    headers = {k.upper(): v for k, v in root.headers().items()}
    adopted = TraceContext.from_headers(headers)
    assert adopted.trace_id == root.trace_id
    # The server's span is a *new* span parented to the caller's.
    assert adopted.parent_id == root.span_id
    assert adopted.span_id != root.span_id


@pytest.mark.parametrize("bad", [
    {},  # no headers at all
    {TRACE_HEADER: "not hex!"},
    {TRACE_HEADER: "a" * 33},  # too long
    {TRACE_HEADER: ""},
])
def test_trace_context_invalid_headers_degrade_to_fresh_root(bad):
    ctx = TraceContext.from_headers(bad)
    assert valid_trace_id(ctx.trace_id)
    assert ctx.parent_id is None
    assert ctx.trace_id != bad.get(TRACE_HEADER)


def test_trace_context_invalid_parent_is_dropped_not_fatal():
    root = TraceContext.new()
    ctx = TraceContext.from_headers({
        TRACE_HEADER: root.trace_id, PARENT_HEADER: "zz-not-hex"})
    assert ctx.trace_id == root.trace_id
    assert ctx.parent_id is None


def test_trace_context_wire_round_trip():
    child = TraceContext.new().child()
    assert TraceContext.from_wire(child.to_wire()) == child


def test_context_tracer_stamps_bound_fields_explicit_wins():
    inner = RecordingTracer()
    bound = ContextTracer(inner, trace="t1", span="s1")
    bound.emit("hit", 1.0, vpn=7)
    bound.emit("span", 2.0, span="s2", parent="s1", name="x")
    first, second = inner.events
    assert first == {"ev": "hit", "t": 1.0, "trace": "t1",
                     "span": "s1", "vpn": 7}
    assert second["span"] == "s2" and second["parent"] == "s1"
    assert second["trace"] == "t1"


def test_with_fields_is_identity_when_tracing_off():
    obs = Observability()  # NULL_TRACER
    assert obs.with_fields(trace="t") is obs


# -- trace stitching and rendering ----------------------------------------

def test_load_events_rejects_malformed_lines(tmp_path):
    good = tmp_path / "good.jsonl"
    good.write_text('{"ev": "hit", "t": 1.0}\n\n{"ev": "miss", "t": 2.0}\n')
    assert [e["ev"] for e in load_events(str(good))] == ["hit", "miss"]

    bad_json = tmp_path / "bad.jsonl"
    bad_json.write_text('{"ev": "hit"}\nnot json\n')
    with pytest.raises(ValueError, match="line 2"):
        load_events(str(bad_json))

    not_event = tmp_path / "no-ev.jsonl"
    not_event.write_text('{"t": 1.0}\n')
    with pytest.raises(ValueError, match="not a trace event"):
        load_events(str(not_event))


def _synthetic_trace():
    root = TraceContext.new()
    point = root.child()
    events = [
        {"ev": "span", "t": 0.0, "name": "service.request", "dur": 0.5,
         **root.span_fields()},
        {"ev": "span", "t": 0.1, "name": "service.point", "dur": 0.4,
         "tier": "computed", **point.span_fields()},
        {"ev": "tlb_hit", "t": 0.2, **point.fields()},
        {"ev": "tlb_hit", "t": 0.3, **point.fields()},
        {"ev": "loose", "t": 0.4, "trace": root.trace_id},
    ]
    return root, events


def test_render_trace_builds_nested_tree_with_event_summaries():
    root, events = _synthetic_trace()
    traces = stitch(events)
    assert set(traces) == {root.trace_id}
    tree = render_trace(root.trace_id, traces[root.trace_id])
    assert "2 spans" in tree and "5 events" in tree
    request_line, point_line = tree.splitlines()[1:3]
    assert "service.request" in request_line
    # The child span is indented under its parent and carries the
    # aggregate count of its two attached fine-grained events.
    assert point_line.startswith("    ")
    assert "service.point" in point_line and "tlb_hit×2" in point_line
    assert "(unparented) 1 events" in tree


def test_render_traces_unknown_id_lists_known_ones():
    root, events = _synthetic_trace()
    with pytest.raises(ValueError, match=root.trace_id):
        render_traces(events, trace_id="feedbeef")


def test_trace_show_cli_renders_and_rejects_unknown_id(tmp_path, capsys):
    from repro.experiments.cli import main

    path = tmp_path / "t.jsonl"
    root, events = _synthetic_trace()
    path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
    assert main(["trace", "show", "--trace-in", str(path)]) == 0
    assert root.trace_id in capsys.readouterr().out
    assert main(["trace", "show", "--trace-in", str(path),
                 "--trace-id", "feedbeef"]) == 2
    err = capsys.readouterr().err
    assert "not found" in err and "\n" not in err.strip()


# -- registry and histogram merges ----------------------------------------

def test_merge_empty_registry_is_a_no_op():
    reg = MetricsRegistry()
    reg.add("iommu.accesses", 5)
    reg.set_gauge("inflight", 2.0)
    reg.histogram("lat").record(1.5)
    before = reg.snapshot()
    reg.merge(MetricsRegistry())
    assert reg.snapshot() == before


def test_merge_into_empty_registry_copies_everything():
    src = MetricsRegistry()
    src.add("iommu.accesses", 5)
    src.set_gauge("inflight", 2.0)
    src.histogram("lat").record(1.5)
    dst = MetricsRegistry()
    dst.merge(src)
    assert dst.snapshot() == src.snapshot()


def test_merge_rejects_mismatched_bucket_layouts():
    a = MetricsRegistry()
    a.histogram("lat", sub_buckets_per_octave=8).record(1.0)
    b = MetricsRegistry()
    b.histogram("lat", sub_buckets_per_octave=4).record(1.0)
    with pytest.raises(ValueError, match="bucket layouts"):
        a.merge(b)
    # The direct histogram merge carries the same contract.
    with pytest.raises(ValueError, match="8 vs 4"):
        a.histogram("lat").merge(LatencyHistogram(4))


def test_merge_after_snapshot_keeps_old_snapshot_intact():
    a = MetricsRegistry()
    a.add("requests", 1)
    a.histogram("lat").record(2.0)
    frozen = a.snapshot()

    b = MetricsRegistry()
    b.add("requests", 2)
    b.histogram("lat").record(4.0)
    a.merge(b)

    assert frozen["counters"]["requests"] == 1
    assert frozen["histograms"]["lat"]["count"] == 1
    after = a.snapshot()
    assert after["counters"]["requests"] == 3
    assert after["histograms"]["lat"]["count"] == 2
    assert after["histograms"]["lat"]["min"] == 2.0
    assert after["histograms"]["lat"]["max"] == 4.0


def test_merge_gauges_last_write_wins():
    a = MetricsRegistry()
    a.set_gauge("depth", 1.0)
    b = MetricsRegistry()
    b.set_gauge("depth", 9.0)
    a.merge(b)
    assert a.gauges()["depth"] == 9.0


def test_histogram_merge_is_bucket_exact():
    """Merging per-worker histograms matches one shared histogram."""
    samples_a = [0.0, 0.5, 1.0, 3.0, 100.0]
    samples_b = [0.0, 0.25, 8.0, 9.0]
    merged = LatencyHistogram()
    for v in samples_a:
        merged.record(v)
    other = LatencyHistogram()
    for v in samples_b:
        other.record(v)
    merged.merge(other)

    oracle = LatencyHistogram()
    for v in samples_a + samples_b:
        oracle.record(v)
    assert merged.as_dict() == oracle.as_dict()
    assert histogram_buckets(merged) == histogram_buckets(oracle)


def test_merge_adopts_timeline_from_other_registry():
    src = MetricsRegistry()
    src.enable_timeline(epoch_cycles=64.0)
    src.timeline.record("iommu.accesses", 10.0, 3.0)
    dst = MetricsRegistry()
    assert "timeline" not in dst.snapshot()
    dst.merge(src)
    assert dst.timeline is not None
    assert dst.timeline.epoch_cycles == 64.0
    assert dst.timeline.series("iommu.accesses") == [(0.0, 3.0)]


# -- timeline -------------------------------------------------------------

def test_timeline_records_into_epochs():
    tl = Timeline(epoch_cycles=10.0)
    tl.record("x", 5.0, 2.0)
    tl.record("x", 9.9)
    tl.record("x", 15.0)
    assert tl.series("x") == [(0.0, 3.0), (10.0, 1.0)]
    assert tl.names() == ["x"]
    assert tl.series("missing") == []


def test_timeline_auto_coarsens_to_bound_memory():
    tl = Timeline(epoch_cycles=1.0, max_epochs=2)
    for t in range(8):
        tl.record("x", float(t))
    assert tl.epoch_cycles > 1.0
    assert len(tl.series("x")) <= 2
    assert sum(v for _, v in tl.series("x")) == 8.0  # nothing lost


def test_timeline_coarsen_to_is_power_of_two_only():
    tl = Timeline(epoch_cycles=16.0)
    tl.record("x", 0.0)
    tl.record("x", 40.0)
    with pytest.raises(ValueError, match="only coarsen"):
        tl.coarsen_to(8.0)
    with pytest.raises(ValueError, match="power-of-two"):
        tl.coarsen_to(48.0)
    tl.coarsen_to(64.0)
    assert tl.series("x") == [(0.0, 2.0)]


def test_timeline_merge_coarsens_finer_side_without_mutating_it():
    coarse = Timeline(epoch_cycles=32.0)
    coarse.record("x", 0.0, 1.0)
    fine = Timeline(epoch_cycles=16.0)
    fine.record("x", 20.0, 2.0)

    coarse.merge(fine)
    assert coarse.series("x") == [(0.0, 3.0)]
    # The finer operand was coarsened on a scratch copy only.
    assert fine.epoch_cycles == 16.0
    assert fine.series("x") == [(16.0, 2.0)]

    # The symmetric direction coarsens the receiver in place.
    fine.merge(coarse)
    assert fine.epoch_cycles == 32.0
    assert fine.series("x") == [(0.0, 5.0)]


def test_timeline_dict_round_trip():
    tl = Timeline(epoch_cycles=8.0)
    tl.record("a", 3.0, 1.5)
    tl.record("a", 17.0, 2.5)
    tl.record("b", 0.0)
    clone = Timeline.from_dict(tl.as_dict())
    assert clone.as_dict() == tl.as_dict()


def test_timeline_rate_series_skips_empty_denominators():
    tl = Timeline(epoch_cycles=10.0)
    tl.record("hits", 5.0, 3.0)
    tl.record("total", 5.0, 4.0)
    tl.record("total", 25.0, 2.0)  # epoch with no hits at all
    assert tl.rate_series("hits", "total") == [(0.0, 0.75), (20.0, 0.0)]


# -- Prometheus exposition ------------------------------------------------

def test_prometheus_name_mapping():
    assert prometheus_name("service.tier.memo") == "repro_service_tier_memo"
    assert prometheus_name("a-b c") == "repro_a_b_c"
    assert prometheus_name("0bad", prefix="") == "_0bad"


def test_render_prometheus_exact_text():
    reg = MetricsRegistry()
    reg.add("service.requests", 3)
    reg.set_gauge("service.inflight", 2.0)
    assert render_prometheus(reg) == (
        "# HELP repro_service_requests_total "
        "Counter service.requests from the repro simulator.\n"
        "# TYPE repro_service_requests_total counter\n"
        "repro_service_requests_total 3\n"
        "# HELP repro_service_inflight "
        "Gauge service.inflight from the repro simulator.\n"
        "# TYPE repro_service_inflight gauge\n"
        "repro_service_inflight 2\n"
    )


def test_render_prometheus_escapes_help_text():
    reg = MetricsRegistry()
    reg.add("x")
    text = render_prometheus(reg, help_text={"x": 'multi\nline \\ "quoted"'})
    assert '# HELP repro_x_total multi\\nline \\\\ "quoted"\n' in text
    validate_exposition(text)


def test_histogram_buckets_are_cumulative_and_end_at_count():
    hist = LatencyHistogram()
    for v in (0.0, 0.0, 1.0, 5.0, 100.0):
        hist.record(v)
    buckets = histogram_buckets(hist)
    assert buckets[0] == (0.0, 2)  # dedicated zero bucket
    counts = [c for _, c in buckets]
    assert counts == sorted(counts)
    assert buckets[-1] == (math.inf, hist.count)
    bounds = [b for b, _ in buckets]
    assert bounds == sorted(bounds)


def test_validate_exposition_accepts_full_registry_render():
    reg = MetricsRegistry()
    reg.add("service.requests", 7)
    reg.set_gauge("queue.depth", 1.5)
    hist = reg.histogram("service.latency")
    for v in (0.0, 0.001, 0.01, 0.25):
        hist.record(v)
    families = validate_exposition(render_prometheus(reg))
    assert families["repro_service_requests_total"]["type"] == "counter"
    assert families["repro_queue_depth"]["type"] == "gauge"
    latency = families["repro_service_latency"]
    assert latency["type"] == "histogram"
    assert latency["samples"]["+Inf"] == 4.0
    assert latency["samples"]["repro_service_latency_count"] == 4.0


@pytest.mark.parametrize("text,match", [
    ("orphan_sample 1\n", "no TYPE declaration"),
    ("# TYPE broken histogram\n"
     'broken_bucket{le="+Inf"} 2\nbroken_count 3\n', "!= _count"),
    ("# TYPE broken histogram\nbroken_bucket{le=\"1\"} 1\nbroken_count 1\n",
     "missing \\+Inf"),
    ("# TYPE shrink histogram\n"
     'shrink_bucket{le="1"} 5\nshrink_bucket{le="2"} 3\n'
     'shrink_bucket{le="+Inf"} 5\nshrink_count 5\n', "not cumulative"),
    ("# TYPE dup histogram\n"
     'dup_bucket{le="1"} 1\ndup_bucket{le="1"} 1\n', "duplicate bucket"),
    ("# TYPE x counter\nx{bad-label=\"v\"} 1\n", "malformed label"),
    ("# TYPE x wat\n", "unknown metric type"),
])
def test_validate_exposition_rejects_malformed_documents(text, match):
    with pytest.raises(ValueError, match=match):
        validate_exposition(text)


# -- end-to-end: one request, one stitched trace --------------------------

@pytest.fixture
def traced_service(tmp_path):
    tracer = RecordingTracer()
    svc = ExperimentService(
        port=0, jobs=1, scale=SCALE, cache_dir=str(tmp_path / "cache"),
        batch_window=0.005, obs=Observability(tracer=tracer))
    svc.start_in_thread()
    try:
        yield svc, tracer
    finally:
        svc.shutdown()


def test_one_request_stitches_into_a_single_trace(traced_service):
    svc, tracer = traced_service
    ctx = TraceContext.new()
    with ServiceClient(svc.host, svc.port, trace_ctx=ctx) as client:
        reply = client.simulate([{"workload": "bfs",
                                  "design": "baseline-512"}])
        assert reply.points[0].tier == "computed"
        # The server adopts and echoes the caller's trace id.
        assert reply.trace_id == ctx.trace_id
        assert client.last_trace_id == ctx.trace_id

    traces = stitch(tracer.events)
    assert ctx.trace_id in traces
    events = traces[ctx.trace_id]
    tree = render_trace(ctx.trace_id, events)
    for span in ("service.request", "service.point",
                 "cache.run_many", "worker.simulate"):
        assert span in tree, tree

    spans = [e for e in events if e.get("ev") == "span"]
    request = next(s for s in spans if s["name"] == "service.request")
    point = next(s for s in spans if s["name"] == "service.point")
    # client root span → HTTP request span → per-point span.
    assert request["parent"] == ctx.span_id
    assert point["parent"] == request["span"]
    assert point["tier"] == "computed"
    # The simulation's fine-grained events joined the same trace.
    assert any(e.get("ev") != "span" for e in events)


def test_untraced_request_gets_server_minted_trace_id(traced_service):
    svc, _ = traced_service
    with ServiceClient(svc.host, svc.port) as client:
        reply = client.simulate([{"workload": "bfs",
                                  "design": "baseline-512"}])
        assert valid_trace_id(reply.trace_id)
        assert client.last_trace_id == reply.trace_id


def test_metrics_endpoint_speaks_both_formats(traced_service):
    svc, _ = traced_service
    with ServiceClient(svc.host, svc.port) as client:
        client.simulate([{"workload": "bfs", "design": "baseline-512"}])
        snapshot = client.metrics()  # Accept: application/json
        assert snapshot["counters"]["service.tier.computed"] == 1
        families = validate_exposition(client.metrics_text())
        assert "repro_service_requests_total" in families
        assert "repro_service_tier_computed_total" in families
        assert families["repro_service_latency_computed"]["type"] \
            == "histogram"


# -- loadtest -------------------------------------------------------------

def _level(concurrency, rps):
    return LevelResult(
        concurrency=concurrency, requests=concurrency * 8, failures=0,
        wall_seconds=1.0, throughput_rps=rps, p50_ms=1.0, p95_ms=2.0,
        p99_ms=3.0, mean_ms=1.2)


def test_find_knee_flags_first_non_scaling_step():
    assert find_knee([_level(1, 100.0), _level(2, 190.0),
                      _level(4, 200.0)]) == 2
    assert find_knee([_level(1, 100.0), _level(2, 200.0)]) is None
    assert find_knee([_level(1, 100.0)]) is None
    # A zero-throughput level cannot anchor a ratio; it is skipped.
    assert find_knee([_level(1, 0.0), _level(2, 50.0)]) is None


def test_find_knee_zero_throughput_successor_reports_last_nonzero():
    # A level that collapses to zero throughput is the strongest
    # possible saturation signal; the old ratio test divided into it
    # and reported no knee at all.
    assert find_knee([_level(1, 100.0), _level(2, 180.0),
                      _level(4, 0.0)]) == 2
    assert find_knee([_level(1, 100.0), _level(2, 0.0)]) == 1
    # A zero in the middle still anchors to the last non-zero level.
    assert find_knee([_level(1, 100.0), _level(2, 0.0),
                      _level(4, 0.0)]) == 1
    # All-zero sweeps genuinely have no knee to report.
    assert find_knee([_level(1, 0.0), _level(2, 0.0)]) is None


def test_parse_target_accepts_urls_and_bracketed_ipv6():
    from repro.service.client import parse_target

    assert parse_target("127.0.0.1:8000") == ("127.0.0.1", 8000)
    assert parse_target("http://localhost:9/") == ("localhost", 9)
    assert parse_target("[::1]:8000") == ("::1", 8000)
    assert parse_target(":8000") == ("127.0.0.1", 8000)
    with pytest.raises(ValueError, match="missing ':PORT'"):
        parse_target("localhost")
    with pytest.raises(ValueError, match="must be bracketed"):
        parse_target("::1:8000")
    with pytest.raises(ValueError, match="unterminated"):
        parse_target("[::1.8000")
    with pytest.raises(ValueError, match="not an integer"):
        parse_target("host:port")
    with pytest.raises(ValueError, match="out of range"):
        parse_target("host:0")


def test_loadtest_cli_rejects_bad_targets_with_exit_2(capsys):
    from repro.experiments.cli import main

    # A bare host used to be silently mangled by rpartition(':');
    # now it is a usage error before any service is touched.
    assert main(["loadtest", "--lt-target", "localhost"]) == 2
    err = capsys.readouterr().out + capsys.readouterr().err
    assert "missing ':PORT'" in err
    assert main(["loadtest", "--lt-target", "[::1]:notaport"]) == 2
    assert main(["loadtest", "--lt-target", "127.0.0.1:1",
                 "--lt-replicas", "1"]) == 2
    assert main(["loadtest", "--lt-replicas", "one,two"]) == 2
    assert main(["loadtest", "--lt-cold-every", "-1"]) == 2
    assert main(["loadtest", "--lt-cold-points", "not-a-point"]) == 2


def test_loadtest_warmup_failure_exits_1_not_traceback(capsys):
    # Nothing listens on this port: the warm-up simulate must surface
    # as a clean exit-1 diagnostic, not an unhandled ConnectionError.
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()  # free the port again; nobody is listening now
    rc = loadtest.main(target=f"127.0.0.1:{port}", levels=(1,),
                       requests_per_client=1)
    assert rc == 1
    out = capsys.readouterr().out
    assert "load test against" in out and "failed" in out


def test_loadtest_report_render_names_the_knee():
    report = loadtest.LoadtestReport(
        target="127.0.0.1:1", points=[("bfs", "baseline-512")],
        requests_per_client=8,
        levels=[_level(1, 100.0), _level(2, 105.0)], knee_concurrency=1)
    text = report.render()
    assert "saturation knee at 1 client(s)" in text
    assert report.ok
    report.levels[0] = LevelResult(
        concurrency=1, requests=8, failures=1, wall_seconds=1.0,
        throughput_rps=8.0, p50_ms=1.0, p95_ms=1.0, p99_ms=1.0, mean_ms=1.0)
    assert not report.ok


def test_loadtest_against_live_service(tmp_path):
    svc = ExperimentService(
        port=0, jobs=1, scale=SCALE, cache_dir=str(tmp_path / "cache"),
        batch_window=0.005)
    svc.start_in_thread()
    try:
        report = loadtest.run(svc.host, svc.port, levels=(1, 2),
                              requests_per_client=2)
    finally:
        svc.shutdown()
    assert report.ok
    assert [lv.concurrency for lv in report.levels] == [1, 2]
    for lv in report.levels:
        assert lv.requests == lv.concurrency * 2
        assert lv.failures == 0
        assert lv.throughput_rps > 0
        assert 0 < lv.p50_ms <= lv.p95_ms <= lv.p99_ms
    as_dict = report.as_dict()
    assert as_dict["levels"][0]["p99_ms"] == pytest.approx(
        report.levels[0].p99_ms, rel=1e-2)
    assert "req/s" in report.render()


def test_shard_sweep_scales_replica_counts_over_shared_cache(tmp_path):
    hot = [("bfs", "baseline-512"), ("kmeans", "vc-with-opt"),
           ("pagerank", "ideal-mmu"), ("hotspot", "baseline-512")]
    cold = [("nw", "baseline-512"), ("pathfinder", "vc-w-o-opt")]
    report = loadtest.shard_sweep(
        replica_counts=(1, 2), levels=(1, 2), requests_per_client=2,
        points=hot, cold_points=cold, cold_every=4, scale=SCALE,
        batch_window=0.005, max_batch=2, replica_mode="thread",
        cache_dir=str(tmp_path / "cache"))
    assert report.ok
    assert sorted(report.reports) == [1, 2]
    for count, sub in report.reports.items():
        assert sub.cold_every == 4
        assert all(lv.failures == 0 for lv in sub.levels)
        assert report.best_throughput(count) > 0
    speedups = report.speedups()
    assert speedups[1] == pytest.approx(1.0)
    assert speedups[2] > 0
    rendered = report.render()
    assert "replicas" in rendered and "speedup" in rendered
    as_dict = report.as_dict()
    assert as_dict["replica_counts"] == [1, 2]
    assert as_dict["speedup_vs_first"]["1"] == pytest.approx(1.0)
    assert "2" in as_dict["knee_concurrency"]


# -- dashboard ------------------------------------------------------------

def test_line_chart_renders_every_series():
    svg = line_chart("demo", {"a": [(0.0, 1.0), (10.0, 2.0)],
                              "b": [(5.0, 0.5)]},
                     x_label="cycles", y_label="rate")
    assert svg.startswith("<svg")
    assert svg.count("<polyline") == 2
    assert "demo" in svg and "cycles" in svg and "rate" in svg
    with pytest.raises(ValueError):
        line_chart("empty", {})
    with pytest.raises(ValueError):
        line_chart("hollow", {"a": []})


def test_dashboard_collect_yields_timeline_telemetry():
    telemetry = dashboard.collect(
        workload="bfs", designs=(IDEAL_MMU, VC_WITH_OPT), scale=SCALE)
    by_name = {t.design_name: t for t in telemetry}
    assert set(by_name) == {IDEAL_MMU.name, VC_WITH_OPT.name}

    vc = by_name[VC_WITH_OPT.name]
    assert vc.probe_series_name() == "vc.accesses"
    assert vc.queue_depth_series(), "VC design must show IOMMU queueing"
    rates = vc.filter_rate_series()
    assert rates and all(0.0 <= r <= 1.0 for _, r in rates)
    overall = vc.overall_filter_rate()
    assert overall is not None and 0.0 < overall <= 1.0

    # The ideal MMU translates for free: nothing ever reaches an IOMMU.
    ideal = by_name[IDEAL_MMU.name]
    assert ideal.series_sum("iommu.accesses") == 0.0

    page = dashboard.render_html(telemetry, "bfs", SCALE)
    for needle in ("IOMMU queue depth over time",
                   "Translation filter rate over time",
                   "Design comparison", "<svg"):
        assert needle in page
    # No service snapshot supplied → the tier panel explains how to get one.
    assert "--metrics-out" in page


def test_dashboard_main_writes_page(tmp_path, capsys):
    out = tmp_path / "dash.html"
    rc = dashboard.main(workload="bfs", scale=SCALE, out=str(out))
    assert rc == 0
    page = out.read_text(encoding="utf-8")
    assert "Translation filter rate over time" in page
    assert str(out) in capsys.readouterr().out
