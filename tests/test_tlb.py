"""Tests for the TLB model."""

import pytest

from repro.engine.stats import LifetimeTracker
from repro.memsys.permissions import Permissions
from repro.memsys.tlb import TLB


class TestBasicOperation:
    def test_miss_then_hit(self):
        t = TLB(capacity=4)
        assert t.lookup(0x10) is None
        t.insert(0x10, 0x99)
        entry = t.lookup(0x10)
        assert entry.ppn == 0x99
        assert t.hits == 1 and t.misses == 1

    def test_lru_eviction(self):
        t = TLB(capacity=2)
        t.insert(1, 101)
        t.insert(2, 102)
        victim = t.insert(3, 103)
        assert victim.vpn == 1
        assert 1 not in t and 2 in t and 3 in t

    def test_lookup_refreshes_lru(self):
        t = TLB(capacity=2)
        t.insert(1, 101)
        t.insert(2, 102)
        t.lookup(1)
        victim = t.insert(3, 103)
        assert victim.vpn == 2

    def test_reinsert_updates_in_place(self):
        t = TLB(capacity=2)
        t.insert(1, 101)
        assert t.insert(1, 201) is None
        assert t.lookup(1).ppn == 201
        assert len(t) == 1

    def test_infinite_capacity_never_evicts(self):
        t = TLB(capacity=None)
        for vpn in range(10_000):
            assert t.insert(vpn, vpn) is None
        assert len(t) == 10_000

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TLB(capacity=0)

    def test_permissions_carried(self):
        t = TLB(capacity=4)
        t.insert(5, 55, permissions=Permissions.READ_ONLY)
        assert t.lookup(5).permissions == Permissions.READ_ONLY

    def test_miss_ratio(self):
        t = TLB(capacity=4)
        t.lookup(1)
        t.insert(1, 1)
        t.lookup(1)
        assert t.miss_ratio() == 0.5
        assert TLB(capacity=4).miss_ratio() == 0.0


class TestShootdown:
    def test_single_entry_invalidate(self):
        t = TLB(capacity=4)
        t.insert(1, 1)
        assert t.invalidate(1) is True
        assert 1 not in t
        assert t.invalidate(1) is False

    def test_invalidate_all(self):
        t = TLB(capacity=8)
        for vpn in range(5):
            t.insert(vpn, vpn)
        assert t.invalidate_all() == 5
        assert len(t) == 0


class TestLifetimes:
    def test_residence_recorded_on_eviction(self):
        tracker = LifetimeTracker()
        t = TLB(capacity=1, lifetimes=tracker)
        t.insert(1, 1, now=10.0)
        t.insert(2, 2, now=150.0)  # evicts vpn 1
        assert tracker.residence_times == [140.0]

    def test_access_extends_active_span(self):
        tracker = LifetimeTracker()
        t = TLB(capacity=2, lifetimes=tracker)
        t.insert(1, 1, now=0.0)
        t.lookup(1, now=30.0)
        t.invalidate(1, now=100.0)
        assert tracker.active_lifetimes == [30.0]

    def test_invalidate_all_records_all(self):
        tracker = LifetimeTracker()
        t = TLB(capacity=4, lifetimes=tracker)
        t.insert(1, 1, now=0.0)
        t.insert(2, 2, now=5.0)
        t.invalidate_all(now=20.0)
        assert sorted(tracker.residence_times) == [15.0, 20.0]
