"""Tests for memory-trace containers and the trace builder toolkit."""

import pytest

from repro.memsys.address_space import AddressSpace
from repro.workloads.device import (
    DeviceArray,
    TraceBuilder,
    strided_lane_addresses,
    warp_chunks,
)
from repro.workloads.trace import MemoryInstruction, Trace, round_robin_requests


class TestMemoryInstruction:
    def test_lines_deduplicate(self):
        inst = MemoryInstruction(addresses=(0, 64, 127, 128))
        assert inst.lines(128) == (0, 1)

    def test_lines_preserve_first_appearance_order(self):
        inst = MemoryInstruction(addresses=(4096, 0, 8192))
        assert inst.lines(128) == (32, 0, 64)

    def test_pages(self):
        inst = MemoryInstruction(addresses=(0, 4095, 4096, 12288))
        assert inst.pages() == (0, 1, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MemoryInstruction(addresses=())


class TestTrace:
    def trace(self):
        per_cu = [
            [MemoryInstruction(addresses=(0, 4096)),
             MemoryInstruction(addresses=(0,), scratchpad=True)],
            [MemoryInstruction(addresses=(8192,), is_write=True)],
        ]
        return Trace(name="t", per_cu=per_cu, issue_interval=4.0)

    def test_counts(self):
        t = self.trace()
        assert t.n_cus == 2
        assert t.n_instructions == 3
        assert t.global_memory_instructions() == 2

    def test_scratchpad_fraction(self):
        assert self.trace().scratchpad_fraction() == pytest.approx(1 / 3)

    def test_mean_divergence_ignores_scratchpad(self):
        assert self.trace().mean_divergence() == pytest.approx(1.5)

    def test_footprint_pages(self):
        assert self.trace().footprint_pages() == 3

    def test_truncated(self):
        t = self.trace().truncated(1)
        assert t.n_instructions == 2

    def test_round_robin_interleaves(self):
        order = [cu for cu, _inst, _lines in round_robin_requests(self.trace())]
        assert order == [0, 1, 0]

    def test_round_robin_scratchpad_has_no_lines(self):
        rows = list(round_robin_requests(self.trace()))
        scratch = [r for r in rows if r[1].scratchpad]
        assert scratch and scratch[0][2] == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            Trace(name="x", per_cu=[], issue_interval=1.0)
        with pytest.raises(ValueError):
            Trace(name="x", per_cu=[[MemoryInstruction(addresses=(0,))]],
                  issue_interval=0.0)


class TestDeviceArray:
    def test_addressing(self):
        space = AddressSpace(asid=0)
        arr = DeviceArray(space, 100, 8, "a")
        assert arr.addr(0) == arr.base_va
        assert arr.addr(5) == arr.base_va + 40
        assert arr.addrs([1, 3]) == [arr.base_va + 8, arr.base_va + 24]

    def test_bounds_checked(self):
        space = AddressSpace(asid=0)
        arr = DeviceArray(space, 10, 4)
        with pytest.raises(IndexError):
            arr.addr(10)

    def test_row_major_2d(self):
        space = AddressSpace(asid=0)
        arr = DeviceArray(space, 64, 4)
        assert arr.row_addr(2, 3, n_cols=8) == arr.addr(19)

    def test_arrays_are_backed(self):
        space = AddressSpace(asid=0)
        arr = DeviceArray(space, 5000, 4)
        assert space.translate(arr.addr(4999)) is not None


class TestTraceBuilder:
    def test_emit_and_build(self):
        space = AddressSpace(asid=0)
        tb = TraceBuilder(n_cus=4)
        tb.emit(0, [0, 128])
        tb.emit(1, [4096], is_write=True)
        tb.emit_scratch(0)
        trace = tb.build("demo", space, issue_interval=5.0, suite="test")
        assert trace.n_instructions == 3
        assert trace.issue_interval == 5.0
        assert trace.metadata["suite"] == "test"

    def test_empty_build_rejected(self):
        tb = TraceBuilder(n_cus=2)
        with pytest.raises(ValueError):
            tb.build("empty", AddressSpace(asid=0), issue_interval=4.0)

    def test_cu_wraps(self):
        tb = TraceBuilder(n_cus=2)
        tb.emit(5, [0])  # CU 5 → CU 1
        assert len(tb.streams[1]) == 1


class TestWarpChunks:
    def test_covers_all_items(self):
        chunks = list(warp_chunks(100, n_cus=4, lanes=32))
        covered = sum(count for _cu, _start, count in chunks)
        assert covered == 100
        assert chunks[-1][2] == 4  # tail warp

    def test_sampling_still_rotates_cus(self):
        # The regression warp_chunks fixed: with sample=4 and 16 CUs,
        # emitted warps must still spread over all CUs.
        cus = {cu for cu, _s, _c in warp_chunks(32 * 64, n_cus=16, sample=4)}
        assert len(cus) == 16

    def test_sampling_reduces_volume(self):
        full = list(warp_chunks(3200, n_cus=4))
        sampled = list(warp_chunks(3200, n_cus=4, sample=4))
        assert len(sampled) == (len(full) + 3) // 4

    def test_invalid_sample(self):
        with pytest.raises(ValueError):
            list(warp_chunks(100, 4, sample=0))


class TestStridedAddresses:
    def test_unit_stride(self):
        space = AddressSpace(asid=0)
        arr = DeviceArray(space, 100, 4)
        addrs = strided_lane_addresses(arr, 10, 4)
        assert addrs == [arr.addr(10 + k) for k in range(4)]

    def test_page_stride(self):
        space = AddressSpace(asid=0)
        arr = DeviceArray(space, 10_000, 4)
        addrs = strided_lane_addresses(arr, 0, 3, stride=1024)
        assert addrs[1] - addrs[0] == 4096
