"""End-to-end tests for the full virtual cache hierarchy."""

import pytest

from repro.core.virtual_hierarchy import (
    VirtualCacheHierarchy,
    line_key,
    page_key,
    split_page_key,
)
from repro.gpu.coalescer import CoalescedRequest
from repro.memsys.address_space import AddressSpace
from repro.memsys.addressing import line_address, page_number
from repro.memsys.directory import CoherenceProbe
from repro.memsys.permissions import (
    PermissionFault,
    Permissions,
    ReadWriteSynonymFault,
)


@pytest.fixture
def space():
    return AddressSpace(asid=0)


def vc(small_config, space, **kw):
    return VirtualCacheHierarchy(small_config, {0: space.page_table}, **kw)


def read_req(va: int) -> CoalescedRequest:
    return CoalescedRequest(line_addr=line_address(va), is_write=False, n_lanes=1)


def write_req(va: int) -> CoalescedRequest:
    return CoalescedRequest(line_addr=line_address(va), is_write=True, n_lanes=1)


class TestKeyHelpers:
    def test_page_key_roundtrip(self):
        key = page_key(3, 0x12345)
        assert split_page_key(key) == (3, 0x12345)

    def test_distinct_asids_never_alias(self):
        assert line_key(0, 100) != line_key(1, 100)


class TestReadPath:
    def test_first_read_misses_everywhere_and_translates(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(4)
        t = h.access(0, read_req(m.base_va), now=0.0)
        assert t > 100  # paid the IOMMU round trip + memory
        assert h.counters["vc.l2_misses"] == 1
        assert h.iommu.counters["iommu.accesses"] == 1

    def test_l1_hit_skips_translation(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(4)
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        t2 = h.access(0, read_req(m.base_va), now=t1)
        assert t2 - t1 == small_config.l1_latency
        assert h.iommu.counters["iommu.accesses"] == 1  # unchanged
        assert h.counters["vc.l1_hits"] == 1

    def test_l2_hit_from_another_cu_skips_translation(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(4)
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        h.access(1, read_req(m.base_va), now=t1)
        assert h.counters["vc.l2_hits"] == 1
        assert h.iommu.counters["iommu.accesses"] == 1

    def test_fill_updates_fbt_bit_vector(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(1)
        h.access(0, read_req(m.base_va), now=0.0)
        vpn = page_number(m.base_va)
        ppn, _ = space.page_table.lookup(vpn)
        entry = h.fbt.bt.peek(ppn)
        assert entry is not None
        assert entry.line_cached(0)
        assert entry.leading_vpn == vpn

    def test_fill_updates_invalidation_filter(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(1)
        h.access(2, read_req(m.base_va), now=0.0)
        assert h.filters[2].might_hold(0, page_number(m.base_va))
        assert not h.filters[0].might_hold(0, page_number(m.base_va))

    def test_unmapped_page_faults(self, small_config, space):
        from repro.memsys.permissions import PageFault
        h = vc(small_config, space)
        with pytest.raises(PageFault):
            h.access(0, read_req(0xDEAD_0000_0000), now=0.0)


class TestWritePath:
    def test_write_through_marks_l2_dirty(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(1)
        t1 = h.access(0, read_req(m.base_va), now=0.0)   # fill L1+L2
        h.access(0, write_req(m.base_va), now=t1)        # L1 write hit
        key = line_key(0, line_address(m.base_va))
        assert h.l2.peek(key).dirty
        assert not h.l1s[0].peek(key).dirty  # L1 stays clean (write-through)

    def test_write_sets_fbt_written_flag(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(1)
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        h.access(0, write_req(m.base_va), now=t1)
        vpn = page_number(m.base_va)
        ppn, _ = space.page_table.lookup(vpn)
        assert h.fbt.bt.peek(ppn).written

    def test_write_miss_does_not_allocate_l1(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(1)
        h.access(0, write_req(m.base_va), now=0.0)
        key = line_key(0, line_address(m.base_va))
        assert h.l1s[0].peek(key) is None
        assert h.l2.peek(key).dirty  # write-allocate into L2

    def test_read_only_page_rejects_write(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(1, permissions=Permissions.READ_ONLY)
        with pytest.raises(PermissionFault):
            h.access(0, write_req(m.base_va), now=0.0)

    def test_cached_permissions_checked_on_l1_hit(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(1, permissions=Permissions.READ_ONLY)
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        with pytest.raises(PermissionFault):
            h.access(0, write_req(m.base_va), now=t1)


class TestSynonyms:
    def test_synonym_read_replays_with_leading_address(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(1, permissions=Permissions.READ_ONLY)
        syn = space.map_synonym(m)
        t1 = h.access(0, read_req(m.base_va), now=0.0)
        t2 = h.access(1, read_req(syn.base_va), now=t1)
        assert h.counters["vc.synonym_replays"] == 1
        # The replay found the line under the leading address — no
        # duplicate copy was created in the L2.
        lead = line_key(0, line_address(m.base_va))
        other = line_key(0, line_address(syn.base_va))
        assert h.l2.contains(lead)
        assert not h.l2.contains(other)

    def test_no_duplication_invariant(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(2, permissions=Permissions.READ_ONLY)
        syn = space.map_synonym(m)
        t = 0.0
        for va in (m.base_va, syn.base_va, m.base_va + 128, syn.base_va + 128):
            t = h.access(0, read_req(va), now=t)
        # Two distinct lines cached, both under the leading page.
        assert len(h.l2) == 2

    def test_read_write_synonym_faults(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(1)
        syn = space.map_synonym(m)
        t1 = h.access(0, write_req(m.base_va), now=0.0)
        with pytest.raises(ReadWriteSynonymFault):
            h.access(0, read_req(syn.base_va), now=t1)

    def test_synonym_replay_when_line_not_cached_fetches(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(1, permissions=Permissions.READ_ONLY)
        syn = space.map_synonym(m)
        t1 = h.access(0, read_req(m.base_va), now=0.0)       # line 0 leading
        h.access(0, read_req(syn.base_va + 128), now=t1)     # line 1 via synonym
        lead_line1 = line_key(0, line_address(m.base_va + 128))
        assert h.l2.contains(lead_line1)


class TestShootdownAndProbes:
    def test_shootdown_invalidates_cached_data(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(1)
        h.access(0, read_req(m.base_va), now=0.0)
        vpn = page_number(m.base_va)
        assert h.shootdown(0, vpn) is True
        key = line_key(0, line_address(m.base_va))
        assert not h.l2.contains(key)
        assert not h.l1s[0].contains(key)  # filter hit → L1 flushed
        assert h.counters["vc.l1_flushes"] == 1

    def test_shootdown_filtered_when_page_not_cached(self, small_config, space):
        h = vc(small_config, space)
        assert h.shootdown(0, 0x9999) is False

    def test_shootdown_all_flushes_everything(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(4)
        t = 0.0
        for i in range(4):
            t = h.access(0, read_req(m.base_va + i * 4096), now=t)
        assert h.shootdown_all() == 4
        assert len(h.l2) == 0

    def test_probe_filtered_for_uncached_line(self, small_config, space):
        h = vc(small_config, space)
        probe = h.handle_probe(CoherenceProbe(physical_line=123456))
        assert probe.filtered is True

    def test_probe_invalidates_cached_line(self, small_config, space):
        h = vc(small_config, space)
        m = space.mmap(1)
        h.access(0, read_req(m.base_va), now=0.0)
        pa = space.translate(m.base_va)
        probe = h.handle_probe(CoherenceProbe(physical_line=pa // 128))
        assert probe.filtered is False
        assert probe.forwarded_virtual_line == line_address(m.base_va)
        assert not h.l2.contains(line_key(0, line_address(m.base_va)))


class TestFBTEviction:
    def test_bt_conflict_eviction_invalidates_victim_data(self, small_config, space):
        # Shrink the BT so two pages collide.
        cfg = small_config
        import dataclasses
        cfg = dataclasses.replace(cfg, fbt_entries=4, fbt_associativity=1)
        h = VirtualCacheHierarchy(cfg, {0: space.page_table})
        # Find two mapped pages whose PPNs land in the same BT set.
        m = space.mmap(8)
        vpn0 = page_number(m.base_va)
        ppn0, _ = space.page_table.lookup(vpn0)
        conflict = next(
            i for i in range(1, 8)
            if space.page_table.lookup(vpn0 + i)[0] % 4 == ppn0 % 4
        )
        t = h.access(0, read_req(m.base_va), now=0.0)
        h.access(0, read_req(m.base_va + conflict * 4096), now=t)
        assert h.fbt.counters["fbt.evictions"] == 1
        assert not h.l2.contains(line_key(0, line_address(m.base_va)))
        assert h.counters["vc.invalidations"] >= 1
