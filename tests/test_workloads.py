"""Tests for the 15 workload generators and the registry.

Generators run at a tiny scale here; the assertions are about structure
(non-empty, realistic divergence, correct metadata), not calibration —
the benchmarks check the calibrated behaviour.
"""

import pytest

from repro.workloads import registry
from repro.workloads.registry import (
    HIGH_BANDWIDTH,
    LOW_BANDWIDTH,
    WORKLOADS,
    clear_cache,
    is_high_bandwidth,
    load,
)

TINY = 0.05


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRegistry:
    def test_fifteen_workloads(self):
        assert len(WORKLOADS) == 15
        assert set(HIGH_BANDWIDTH) | set(LOW_BANDWIDTH) == set(WORKLOADS)
        assert not set(HIGH_BANDWIDTH) & set(LOW_BANDWIDTH)

    def test_paper_suites(self):
        pannotia = {"bc", "color_maxmin", "color_max", "fw", "fw_block",
                    "mis", "pagerank", "pagerank_spmv"}
        rodinia = {"kmeans", "backprop", "bfs", "hotspot", "lud", "nw",
                   "pathfinder"}
        assert pannotia | rodinia == set(WORKLOADS)

    def test_high_bandwidth_grouping(self):
        # §5.2: all Pannotia + bfs + lud are high-BW; the other five not.
        assert is_high_bandwidth("mis")
        assert is_high_bandwidth("bfs")
        assert is_high_bandwidth("lud")
        assert not is_high_bandwidth("kmeans")
        assert not is_high_bandwidth("pathfinder")

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            load("not_a_workload")
        with pytest.raises(KeyError):
            is_high_bandwidth("nope")

    def test_memoization(self):
        a = load("kmeans", scale=TINY)
        b = load("kmeans", scale=TINY)
        assert a is b
        clear_cache()
        c = load("kmeans", scale=TINY)
        assert c is not a

    def test_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert registry.default_scale() == 0.05
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            registry.default_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            registry.default_scale()


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestEveryWorkload:
    def test_generates_valid_trace(self, name):
        trace = load(name, scale=TINY)
        assert trace.name == name
        assert trace.n_instructions > 50
        assert trace.n_cus == 16
        assert trace.footprint_pages() > 10
        assert trace.issue_interval > 0

    def test_metadata(self, name):
        trace = load(name, scale=TINY)
        assert trace.metadata["suite"] in ("pannotia", "rodinia")
        assert trace.metadata["high_bandwidth"] == is_high_bandwidth(name)

    def test_addresses_are_mapped(self, name):
        trace = load(name, scale=TINY)
        space = trace.address_space
        checked = 0
        for inst in trace.all_instructions():
            if inst.scratchpad:
                continue
            for addr in inst.addresses[:2]:
                assert space.translate(addr) is not None, hex(addr)
                checked += 1
            if checked > 200:
                break
        assert checked > 0

    def test_deterministic(self, name):
        a = load(name, scale=TINY)
        clear_cache()
        b = load(name, scale=TINY)
        assert a.n_instructions == b.n_instructions
        first_a = next(iter(a.all_instructions()))
        first_b = next(iter(b.all_instructions()))
        assert first_a.addresses == first_b.addresses


class TestWorkloadCharacter:
    def test_graph_kernels_are_divergent(self):
        for name in ("mis", "color_max", "pagerank"):
            trace = load(name, scale=TINY)
            assert trace.mean_divergence() > 4.0, name

    def test_dense_kernels_are_coalesced(self):
        for name in ("backprop", "hotspot", "pathfinder"):
            trace = load(name, scale=TINY)
            assert trace.mean_divergence() < 2.0, name

    def test_fw_is_the_divergence_extreme(self):
        # §3.1: fw averages 9.3 accesses per memory instruction.
        trace = load("fw", scale=TINY)
        assert trace.mean_divergence() > 8.0

    def test_scratchpad_workloads(self):
        # §3.1: most of nw/pathfinder accesses are scratchpad.
        for name in ("nw", "pathfinder"):
            trace = load(name, scale=TINY)
            assert trace.scratchpad_fraction() > 0.5, name
        assert load("pagerank", scale=TINY).scratchpad_fraction() == 0.0

    def test_scale_grows_traces(self):
        small = load("pagerank", scale=0.05)
        clear_cache()
        large = load("pagerank", scale=0.2)
        assert large.footprint_pages() > 2 * small.footprint_pages()

    def test_writes_present(self):
        trace = load("mis", scale=TINY)
        assert any(i.is_write for i in trace.all_instructions())
